(* Read-path and CNA-lock suite for the optimistic-reads PR.

   Pins the zero-overhead claim (both flags off = bit-identical to the
   pre-PR goldens), the perf claim (pure-read throughput strictly higher
   with the seqlock path on), the CNA lock's mutual exclusion and handoff
   accounting, linearizability of the new engine variants under seeded
   fault plans, and the catchability of the [Skip_read_validate]
   mutation at its pinned counterexample tuple. *)

module T = Nr_sim.Topology
module E = Nr_check.Explore
open Nr_harness

(* --- fixed-seed goldens with both flags off ------------------------ *)

(* The fig5a-style probe points captured on the pre-PR tree: any drift
   with cna_lock and optimistic_reads off means the refactor changed a
   charge sequence it promised not to touch. *)

let params threads =
  {
    Params.topo = T.intel;
    threads = [ threads ];
    warmup_us = 2.0;
    measure_us = 12.0;
    population = 512;
    seed = 0xA5A5;
    latency = false;
  }

let run_cfg cfg ~update_pct ~threads =
  let params = params threads in
  let setup rt =
    let exec =
      Exp_pq.Sl_exp.W.build rt Method.NR ~cfg ~threads
        ~factory:(Exp_pq.Sl_exp.factory params) ()
    in
    Exp_pq.Sl_exp.body params ~update_pct ~e:0 ~exec rt
  in
  Driver.run_sim ~topo:params.Params.topo ~threads
    ~warmup_us:params.Params.warmup_us ~measure_us:params.Params.measure_us
    setup

(* (update_pct, threads, total_ops, ops_per_us as hex-float bits) *)
let goldens =
  [
    (0, 28, 3472, 0x1.2155555555555p+8);
    (10, 28, 585, 0x1.86p+5);
    (10, 14, 487, 0x1.44aaaaaaaaaabp+5);
    (100, 28, 78, 0x1.ap+2);
  ]

let test_flags_off_goldens () =
  List.iter
    (fun (update_pct, threads, ops, opus) ->
      let r = run_cfg Nr_core.Config.default ~update_pct ~threads in
      let tag = Printf.sprintf "upd=%d t=%d" update_pct threads in
      Alcotest.(check int) (tag ^ ": total ops") ops r.Driver.total_ops;
      Alcotest.(check int) (tag ^ ": remote transfers") 0
        r.Driver.remote_transfers;
      Alcotest.(check bool)
        (tag ^ ": ops/us bit-identical to golden")
        true
        (Int64.bits_of_float opus = Int64.bits_of_float r.Driver.ops_per_us))
    goldens

let opt_cfg =
  {
    Nr_core.Config.default with
    optimistic_reads = true;
    read_patience = Some 4;
  }

let cna_opt_cfg = { opt_cfg with Nr_core.Config.cna_lock = true }

(* --- the perf claim and flags-on determinism ----------------------- *)

let test_optimistic_reads_faster () =
  let off = run_cfg Nr_core.Config.default ~update_pct:0 ~threads:28 in
  let on = run_cfg opt_cfg ~update_pct:0 ~threads:28 in
  let cna = run_cfg cna_opt_cfg ~update_pct:0 ~threads:28 in
  Alcotest.(check bool)
    "0%-update sweep faster with optimistic reads on" true
    (on.Driver.total_ops > off.Driver.total_ops);
  Alcotest.(check bool)
    "cna_lock does not regress the pure-read point" true
    (cna.Driver.total_ops >= on.Driver.total_ops)

let test_flags_on_deterministic () =
  let a = run_cfg cna_opt_cfg ~update_pct:10 ~threads:28 in
  let b = run_cfg cna_opt_cfg ~update_pct:10 ~threads:28 in
  Alcotest.(check int) "total ops" a.Driver.total_ops b.Driver.total_ops;
  Alcotest.(check bool)
    "throughput bit-identical" true
    (Int64.bits_of_float a.Driver.ops_per_us
    = Int64.bits_of_float b.Driver.ops_per_us)

(* --- CNA lock unit tests ------------------------------------------- *)

let test_cna_mutual_exclusion () =
  let sched = Nr_sim.Sched.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Cna = Nr_sync.Cna_lock.Make (R) in
  let l = Cna.create ~threshold:4 () in
  let count = ref 0 and in_cs = ref false and clashes = ref 0 in
  let rounds = 50 in
  for tid = 0 to 3 do
    Nr_sim.Sched.spawn sched ~tid (fun () ->
        (* stagger arrivals and hold long: identical lock-step loops
           rotate the free lock in a convoy and nobody ever queues *)
        R.work (tid * 53);
        for _ = 1 to rounds do
          Cna.lock l;
          if !in_cs then incr clashes;
          in_cs := true;
          R.work 500;
          incr count;
          in_cs := false;
          Cna.unlock l
        done)
  done;
  Nr_sim.Sched.run sched;
  Alcotest.(check int) "no overlapping critical sections" 0 !clashes;
  Alcotest.(check int) "every acquisition ran" (4 * rounds) !count;
  Alcotest.(check bool) "lock free at quiescence" false (Cna.locked l);
  let s = Cna.snapshot l in
  Alcotest.(check bool)
    "contention produced queued handoffs" true
    (s.Nr_sync.Cna_lock.local_handoffs + s.Nr_sync.Cna_lock.remote_handoffs
    > 0)

let test_cna_try_lock () =
  let sched = Nr_sim.Sched.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Cna = Nr_sync.Cna_lock.Make (R) in
  let l = Cna.create ~threshold:2 () in
  Nr_sim.Sched.spawn sched ~tid:0 (fun () ->
      Alcotest.(check bool) "try_lock on free lock" true (Cna.try_lock l);
      Alcotest.(check bool) "locked after try_lock" true (Cna.locked l);
      Alcotest.(check bool) "try_lock on held lock" false (Cna.try_lock l);
      Cna.unlock l;
      Alcotest.(check bool) "free after unlock" false (Cna.locked l);
      (* a queue-based lock must still work after a try_lock round *)
      Cna.lock l;
      Cna.unlock l;
      Alcotest.(check bool) "free after lock/unlock" false (Cna.locked l))
  |> ignore;
  Nr_sim.Sched.run sched

(* Threshold 1 forces a secondary splice or remote grant on every
   cross-node contention episode; with all four tiny-topology threads
   hammering the lock the fairness path must fire. *)
let test_cna_fairness_path () =
  let sched = Nr_sim.Sched.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Cna = Nr_sync.Cna_lock.Make (R) in
  let l = Cna.create ~threshold:1 () in
  for tid = 0 to 3 do
    Nr_sim.Sched.spawn sched ~tid (fun () ->
        R.work (tid * 53);
        for _ = 1 to 40 do
          Cna.lock l;
          R.work 500;
          Cna.unlock l
        done)
  done;
  Nr_sim.Sched.run sched;
  let s = Cna.snapshot l in
  Alcotest.(check bool)
    "remote waiters eventually served" true
    (s.Nr_sync.Cna_lock.remote_handoffs + s.Nr_sync.Cna_lock.splices > 0)

(* --- sequential oracle through the optimistic path ----------------- *)

let test_opt_path_sequential_oracle () =
  let sched = Nr_sim.Sched.create T.tiny in
  let rt = Nr_runtime.Runtime_sim.make sched in
  let module W = Families.Wrap (Nr_seqds.Skiplist_dict) in
  let oracle = Nr_seqds.Skiplist_dict.create () in
  let exec =
    W.build rt Method.NR ~cfg:cna_opt_cfg ~threads:1
      ~factory:(fun () -> Nr_seqds.Skiplist_dict.create ())
      ()
  in
  let rng = Nr_workload.Prng.create ~seed:7 in
  Nr_sim.Sched.spawn sched ~tid:0 (fun () ->
      for _ = 1 to 300 do
        let op = Chaos.dict_op 8 rng in
        let expect = Nr_seqds.Skiplist_dict.execute oracle op in
        let got = exec op in
        Alcotest.(check bool)
          "optimistic path agrees with the sequential oracle" true
          (expect = got)
      done)
  |> ignore;
  Nr_sim.Sched.run sched

(* --- linearizability of the new engines under fault plans ---------- *)

(* Seeded plans, including the steal/death families on the robust
   variant: every history the explorer records must linearize — the
   optimistic read path is indistinguishable from the slot path. *)
let opt_engines_linearizable =
  QCheck.Test.make ~count:12
    ~name:"NR-cna / NR-robust-opt linearizable under seeded fault plans"
    QCheck.(
      make
        Gen.(
          let* seed = int_range 1 1000 in
          let* salt = oneofl [ 0; 7; 21; 1365 ] in
          let* plan =
            oneofl
              [ "none"; "jitter:2"; "storm:3"; "steal:1"; "death:1" ]
          in
          let* engine = oneofl [ E.Nr_cna; E.Nr_robust_opt ] in
          return (seed, salt, plan, engine))
        ~print:(fun (seed, salt, plan, engine) ->
          Printf.sprintf "seed=%d salt=%d plan=%s engine=%s" seed salt plan
            (E.engine_name engine)))
    (fun (seed, salt, plan, engine) ->
      (* steal/death assume the hardened protocol *)
      let engine =
        if E.plan_allows ~spec:plan engine then engine else E.Nr_robust_opt
      in
      E.Run_kv.check_one ~topo:"tiny" ~threads:4 ~seed ~salt ~plan
        ~ops_per_thread:6 ~key_space:2 ~engine ~mutation:false ()
      = None)

(* --- the seeded mutation is caught --------------------------------- *)

(* The pinned counterexample tuple found by the sweep: skipping the
   post-read stamp validation lets a preempted reader return a stale
   value a completed remote update already overwrote. *)
let test_skip_read_validate_caught () =
  match
    E.Run_kv.check_one ~topo:"tiny" ~threads:4 ~seed:17 ~salt:7
      ~plan:"storm:1" ~ops_per_thread:20 ~key_space:2 ~engine:E.Nr_cna
      ~mutation:true ()
  with
  | Some _ -> ()
  | None ->
      Alcotest.fail
        "Skip_read_validate mutation not flagged at its pinned tuple"

let suite =
  [
    Alcotest.test_case "flags-off fixed-seed goldens" `Quick
      test_flags_off_goldens;
    Alcotest.test_case "optimistic reads beat the slot path at 0% updates"
      `Quick test_optimistic_reads_faster;
    Alcotest.test_case "flags-on sweep point is deterministic" `Quick
      test_flags_on_deterministic;
    Alcotest.test_case "CNA lock mutual exclusion + handoff accounting"
      `Quick test_cna_mutual_exclusion;
    Alcotest.test_case "CNA try_lock" `Quick test_cna_try_lock;
    Alcotest.test_case "CNA fairness path fires at threshold 1" `Quick
      test_cna_fairness_path;
    Alcotest.test_case "optimistic path agrees with sequential oracle"
      `Quick test_opt_path_sequential_oracle;
    QCheck_alcotest.to_alcotest opt_engines_linearizable;
    Alcotest.test_case "Skip_read_validate caught at pinned tuple" `Quick
      test_skip_read_validate_caught;
  ]

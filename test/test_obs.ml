(* Observability subsystem tests: histogram quantile math (units +
   properties), the Chrome trace exporter (golden bytes, drop-oldest
   semantics, determinism of a traced simulation), the metrics registry
   and the slowlog. *)

module H = Nr_obs.Histogram
module Trace = Nr_obs.Trace
module Sink = Nr_obs.Sink
module Metrics = Nr_obs.Metrics
module Slowlog = Nr_obs.Slowlog

(* --- histogram: unit tests --- *)

(* Bucket lower bounds are at most ~3% (1/32) below the true value, and
   never above it. *)
let check_approx what expect got =
  let lo = expect - (expect / 16) - 1 in
  if got < lo || got > expect then
    Alcotest.failf "%s: expected within [%d,%d], got %d" what lo expect got

let test_histogram_empty () =
  let h = H.create () in
  Alcotest.(check int) "count" 0 (H.count h);
  Alcotest.(check int) "sum" 0 (H.sum h);
  Alcotest.(check int) "q50" 0 (H.quantile h 0.5);
  Alcotest.(check int) "max" 0 (H.max_value h)

let test_histogram_small_exact () =
  (* values below 32 land in exact buckets: quantiles are exact *)
  let h = H.create () in
  List.iter (H.record h) [ 4; 1; 3; 2 ];
  Alcotest.(check int) "count" 4 (H.count h);
  Alcotest.(check int) "sum" 10 (H.sum h);
  Alcotest.(check int) "min" 1 (H.min_value h);
  Alcotest.(check int) "max" 4 (H.max_value h);
  Alcotest.(check int) "q0 -> min" 1 (H.quantile h 0.0);
  Alcotest.(check int) "q50 -> rank 2" 2 (H.quantile h 0.5);
  Alcotest.(check int) "q75 -> rank 3" 3 (H.quantile h 0.75);
  Alcotest.(check int) "q100 -> max" 4 (H.quantile h 1.0)

let test_histogram_quantiles () =
  let h = H.create () in
  for v = 1 to 10_000 do
    H.record h v
  done;
  check_approx "p50" 5_000 (H.quantile h 0.5);
  check_approx "p90" 9_000 (H.quantile h 0.9);
  check_approx "p99" 9_900 (H.quantile h 0.99);
  check_approx "p999" 9_990 (H.quantile h 0.999);
  check_approx "p100" 10_000 (H.quantile h 1.0);
  Alcotest.(check int) "count" 10_000 (H.count h);
  let mean = H.mean h in
  if Float.abs (mean -. 5000.5) > 1.0 then
    Alcotest.failf "mean: expected ~5000.5, got %f" mean

let test_histogram_clear () =
  let h = H.create () in
  H.record h 1234;
  H.clear h;
  Alcotest.(check int) "count" 0 (H.count h);
  Alcotest.(check int) "q99" 0 (H.quantile h 0.99)

(* --- histogram: qcheck properties --- *)

let values_gen = QCheck.Gen.(list_size (int_range 1 200) (int_bound 2_000_000))

let quantiles_monotone =
  QCheck.Test.make ~count:200 ~name:"histogram quantiles monotone in q"
    (QCheck.make values_gen ~print:QCheck.Print.(list int))
    (fun vs ->
      let h = H.create () in
      List.iter (H.record h) vs;
      let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999; 1.0 ] in
      let rec mono = function
        | q1 :: (q2 :: _ as rest) ->
            H.quantile h q1 <= H.quantile h q2 && mono rest
        | _ -> true
      in
      mono qs)

let merge_is_union =
  QCheck.Test.make ~count:200 ~name:"histogram merge = recording the union"
    (QCheck.make
       QCheck.Gen.(pair values_gen values_gen)
       ~print:QCheck.Print.(pair (list int) (list int)))
    (fun (xs, ys) ->
      let a = H.create () and b = H.create () and u = H.create () in
      List.iter (H.record a) xs;
      List.iter (H.record b) ys;
      List.iter (H.record u) (xs @ ys);
      H.merge ~into:a b;
      H.count a = H.count u
      && H.sum a = H.sum u
      && H.min_value a = H.min_value u
      && H.max_value a = H.max_value u
      && List.for_all
           (fun q -> H.quantile a q = H.quantile u q)
           [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ])

(* --- trace: golden Chrome JSON bytes --- *)

let test_trace_golden () =
  let clock = ref 0 in
  let now () =
    clock := !clock + 10;
    !clock
  in
  let tr = Trace.create ~capacity:8 ~threads:2 ~now () in
  Trace.span_begin tr ~tid:0 ~node:0 ~cat:"nr" "combine";
  Trace.instant tr ~tid:0 ~node:0 ~cat:"nr" ~arg:3 "append";
  Trace.span_end tr ~tid:0 ~node:0 ~cat:"nr" ~arg:3 "combine";
  Trace.slice tr ~tid:1 ~node:1 ~cat:"sched" ~ts:0 ~dur:25 "run";
  let expected =
    String.concat "\n"
      [
        "{\"displayTimeUnit\":\"ns\",";
        "\"traceEvents\":[";
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"node 0\"}},";
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"node 1\"}},";
        "{\"name\":\"combine\",\"cat\":\"nr\",\"ph\":\"B\",\"ts\":10,\"pid\":0,\"tid\":0},";
        "{\"name\":\"append\",\"cat\":\"nr\",\"ph\":\"i\",\"ts\":20,\"s\":\"t\",\"pid\":0,\"tid\":0,\"args\":{\"v\":3}},";
        "{\"name\":\"combine\",\"cat\":\"nr\",\"ph\":\"E\",\"ts\":30,\"pid\":0,\"tid\":0,\"args\":{\"v\":3}},";
        "{\"name\":\"run\",\"cat\":\"sched\",\"ph\":\"X\",\"ts\":0,\"dur\":25,\"pid\":1,\"tid\":1}";
        "]}";
        "";
      ]
  in
  Alcotest.(check string) "chrome JSON" expected (Trace.to_chrome_string tr)

let test_trace_drop_oldest () =
  let tr = Trace.create ~capacity:2 ~threads:1 ~now:(fun () -> 0) () in
  Trace.instant tr ~tid:0 ~node:0 ~cat:"t" ~arg:Trace.no_arg "a";
  Trace.instant tr ~tid:0 ~node:0 ~cat:"t" ~arg:Trace.no_arg "b";
  Trace.instant tr ~tid:0 ~node:0 ~cat:"t" ~arg:Trace.no_arg "c";
  Alcotest.(check int) "recorded" 3 (Trace.recorded tr);
  Alcotest.(check int) "dropped" 1 (Trace.dropped tr);
  let names = ref [] in
  Trace.iter tr (fun e -> names := e.Trace.name :: !names);
  Alcotest.(check (list string)) "oldest dropped" [ "b"; "c" ]
    (List.rev !names)

let test_trace_slices_dont_evict_spans () =
  (* high-frequency 'X' slices fill their own ring; discrete events
     survive no matter how many slices follow *)
  let tr = Trace.create ~capacity:2 ~threads:1 ~now:(fun () -> 7) () in
  Trace.span_begin tr ~tid:0 ~node:0 ~cat:"nr" "combine";
  for i = 1 to 10 do
    Trace.slice tr ~tid:0 ~node:0 ~cat:"sched" ~ts:i ~dur:1 "run"
  done;
  let spans = ref 0 in
  Trace.iter tr (fun e -> if e.Trace.ph = 'B' then incr spans);
  Alcotest.(check int) "combine span retained" 1 !spans;
  Alcotest.(check int) "dropped slices only" 8 (Trace.dropped tr)

(* --- trace: a tiny 2-thread simulation is deterministic --- *)

let trace_tiny_sim () =
  let sched = Nr_sim.Sched.create Nr_sim.Topology.tiny in
  let tr =
    Trace.create ~capacity:64 ~threads:2
      ~now:(fun () ->
        if Nr_sim.Sched.running () then Nr_sim.Sched.now () else 0)
      ()
  in
  Sink.install_trace tr;
  Fun.protect ~finally:Sink.uninstall_trace (fun () ->
      for tid = 0 to 1 do
        Nr_sim.Sched.spawn sched ~tid (fun () ->
            for _ = 1 to 5 do
              Nr_sim.Sched.work 10;
              Nr_sim.Sched.yield ()
            done)
      done;
      Nr_sim.Sched.run sched);
  Trace.to_chrome_string tr

let contains s sub = Astring_contains.contains s sub

let test_trace_sim_deterministic () =
  let j1 = trace_tiny_sim () in
  let j2 = trace_tiny_sim () in
  Alcotest.(check string) "same sim, same bytes" j1 j2;
  Alcotest.(check bool) "has run slices" true
    (contains j1 "{\"name\":\"run\",\"cat\":\"sched\",\"ph\":\"X\"");
  Alcotest.(check bool) "has tid 1" true (contains j1 "\"tid\":1");
  Alcotest.(check bool) "nothing recorded after uninstall" true
    (not (Sink.tracing ()))

(* --- metrics registry --- *)

let test_metrics_dump () =
  let reg = Metrics.create () in
  let ops = ref 0 in
  Metrics.counter reg ~name:"b_ops" (fun () -> !ops);
  Metrics.gauge reg ~name:"a_rate" (fun () -> float_of_int !ops /. 2.0);
  ops := 10;
  (* closures read live values; dump is sorted by name *)
  let text = Format.asprintf "%a" Metrics.dump reg in
  Alcotest.(check bool) "sorted: a before b" true
    (contains text "a_rate"
    &&
    let ia = String.index text 'a' in
    ia < String.length text
    && String.length text > 0
    &&
    match String.index_opt text 'b' with
    | Some ib -> ia < ib
    | None -> false);
  Alcotest.(check bool) "live counter" true (contains text "10");
  let json = Metrics.to_json reg in
  Alcotest.(check bool) "json has both" true
    (contains json "\"a_rate\"" && contains json "\"b_ops\": 10")

let test_metrics_replace_and_histogram () =
  let reg = Metrics.create () in
  Metrics.counter reg ~name:"x" (fun () -> 1);
  Metrics.counter reg ~name:"x" (fun () -> 2);
  Alcotest.(check int) "re-register replaces" 1 (Metrics.length reg);
  Alcotest.(check bool) "replaced value" true
    (contains (Metrics.to_json reg) "\"x\": 2");
  let h = H.create () in
  List.iter (H.record h) [ 10; 20; 30 ];
  Metrics.histogram reg ~name:"lat" h;
  let json = Metrics.to_json reg in
  Alcotest.(check bool) "derived quantiles" true
    (contains json "\"lat_count\": 3" && contains json "\"lat_p50\": 20")

(* --- slowlog --- *)

let test_slowlog () =
  let sl = Slowlog.create ~capacity:2 () in
  Slowlog.note sl ~duration:5 (fun () -> "GET a");
  Slowlog.note sl ~duration:50 (fun () -> "ZADD b");
  Slowlog.note sl ~duration:20 (fun () -> "ZRANK c");
  Alcotest.(check int) "bounded" 2 (Slowlog.length sl);
  (match Slowlog.entries sl with
  | [ e1; e2 ] ->
      Alcotest.(check string) "slowest first" "ZADD b" e1.Slowlog.command;
      Alcotest.(check string) "then next" "ZRANK c" e2.Slowlog.command
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
  Slowlog.reset sl;
  Alcotest.(check int) "reset" 0 (Slowlog.length sl)

let test_slowlog_threshold () =
  let sl = Slowlog.create ~capacity:4 ~threshold:100 () in
  let formatted = ref 0 in
  Slowlog.note sl ~duration:10 (fun () ->
      incr formatted;
      "fast");
  Slowlog.note sl ~duration:500 (fun () ->
      incr formatted;
      "slow");
  Alcotest.(check int) "below threshold skipped" 1 (Slowlog.length sl);
  Alcotest.(check int) "lazy formatting" 1 !formatted

let suite =
  [
    ("histogram empty", `Quick, test_histogram_empty);
    ("histogram small values exact", `Quick, test_histogram_small_exact);
    ("histogram quantiles ~3%", `Quick, test_histogram_quantiles);
    ("histogram clear", `Quick, test_histogram_clear);
    ("trace golden chrome JSON", `Quick, test_trace_golden);
    ("trace drop-oldest", `Quick, test_trace_drop_oldest);
    ("trace slices don't evict spans", `Quick,
     test_trace_slices_dont_evict_spans);
    ("traced sim deterministic", `Quick, test_trace_sim_deterministic);
    ("metrics dump", `Quick, test_metrics_dump);
    ("metrics replace + histogram", `Quick, test_metrics_replace_and_histogram);
    ("slowlog slowest-N", `Quick, test_slowlog);
    ("slowlog threshold + laziness", `Quick, test_slowlog_threshold);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ quantiles_monotone; merge_is_union ]

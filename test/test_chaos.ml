(* Chaos suite: NR under seeded fault schedules, checked against the
   sequential oracle by the harness (Nr_harness.Chaos).  Every test is
   deterministic — fixed seeds, virtual time — so a pass here pins the
   hardened protocol's behaviour, not a probability of it. *)

module FP = Nr_sim.Fault_plan
module T = Nr_sim.Topology
module C = Nr_harness.Chaos

let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
let key_space = 64

(* Long stalls (well past the robust patience window, as charged by the
   backoff ladder) force handoffs; short probabilities keep runs quick. *)
let stall_plan seed =
  { FP.none with seed; stall_prob = 0.001; stall_cycles = 5_000_000 }

let death_plan seed =
  {
    FP.none with
    seed;
    stall_prob = 0.0005;
    stall_cycles = 1_000_000;
    kill_prob = 0.0003;
    horizon = 1_000_000_000;
  }

let dict_run ~topo ~plan ~ops_per_thread =
  C.Dict_chaos.run ~topo ~plan ~threads:(T.max_threads topo) ~ops_per_thread
    ~gen_op:(C.dict_op key_space)
    ~factory:(fun () -> Nr_seqds.Skiplist_dict.create ())
    ()

let pq_run ~topo ~plan ~ops_per_thread =
  C.Pq_chaos.run ~topo ~plan ~threads:(T.max_threads topo) ~ops_per_thread
    ~gen_op:(C.pq_op key_space)
    ~factory:(fun () -> Nr_seqds.Pairing_pq.create ())
    ()

(* -- oracle under stall schedules, 10 fixed seeds per structure -- *)

let test_dict_stalls () =
  let total_steals = ref 0 in
  List.iter
    (fun seed ->
      let o = dict_run ~topo:T.tiny ~plan:(stall_plan seed) ~ops_per_thread:150 in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: all ops complete (stalls only)" seed)
        o.C.ops_submitted o.C.ops_done;
      total_steals := !total_steals + o.C.steals)
    seeds;
  (* at least one seed must stall a combiner mid-batch long enough for a
     waiter to dispossess it — the handoff path is exercised, not just
     compiled *)
  Alcotest.(check bool)
    "combiner handoffs observed across the stall seeds" true (!total_steals > 0)

let test_pq_stalls () =
  let total = ref 0 in
  List.iter
    (fun seed ->
      let o = pq_run ~topo:T.tiny ~plan:(stall_plan seed) ~ops_per_thread:150 in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: all ops complete (stalls only)" seed)
        o.C.ops_submitted o.C.ops_done;
      total := !total + o.C.steals)
    seeds;
  Alcotest.(check bool) "handoffs observed" true (!total > 0)

(* -- oracle under death schedules -- *)

let test_dict_deaths () =
  let kills = ref 0 in
  List.iter
    (fun seed ->
      let o = dict_run ~topo:T.tiny ~plan:(death_plan seed) ~ops_per_thread:150 in
      (match o.C.fault_stats with
      | Some fs -> kills := !kills + fs.FP.kills + fs.FP.horizon_kills
      | None -> ());
      (* dead threads lose their tail of operations, never the prefix the
         oracle replays — Chaos.run already failed if a replica diverged *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: completed ops within submitted" seed)
        true
        (o.C.ops_done <= o.C.ops_submitted))
    seeds;
  Alcotest.(check bool) "threads actually died" true (!kills > 0)

let test_pq_deaths () =
  let kills = ref 0 in
  List.iter
    (fun seed ->
      let o = pq_run ~topo:T.tiny ~plan:(death_plan seed) ~ops_per_thread:150 in
      (match o.C.fault_stats with
      | Some fs -> kills := !kills + fs.FP.kills + fs.FP.horizon_kills
      | None -> ());
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: completed ops within submitted" seed)
        true
        (o.C.ops_done <= o.C.ops_submitted))
    seeds;
  Alcotest.(check bool) "threads actually died" true (!kills > 0)

(* -- explicit kills: tid 0 dies at a swept effect-point index, hitting
   arbitrary protocol states (waiting, draining, filling, applying) -- *)

let test_explicit_kills () =
  List.iter
    (fun nth ->
      (* the horizon is a termination net: a kill that lands inside a
         replica-rwlock critical section (the one documented-unsupported
         window) blocks the survivors, and without the net the sim would
         spin forever *)
      let plan =
        { FP.none with seed = 77; kills_at = [ (0, nth) ]; horizon = 2_000_000_000 }
      in
      let o = dict_run ~topo:T.tiny ~plan ~ops_per_thread:100 in
      let reaped =
        match o.C.fault_stats with
        | Some fs -> fs.FP.horizon_kills > 0
        | None -> false
      in
      if reaped then
        (* unsupported window hit: liveness is forfeit by design, but the
           sim terminated and the oracle (checked inside [run]) held *)
        Alcotest.(check bool)
          (Printf.sprintf "kill@%d: bounded completions" nth)
          true
          (o.C.ops_done <= 4 * 100)
      else
        (* supported states: three survivors finish everything; tid 0
           loses at most its tail *)
        Alcotest.(check bool)
          (Printf.sprintf "kill@%d: survivors completed" nth)
          true
          (o.C.ops_done >= 3 * 100 && o.C.ops_done < 4 * 100))
    [ 5; 17; 50; 111; 200; 333; 500; 650 ]

(* -- multi-node custom topology, stalls and deaths together -- *)

let test_multinode_mixed () =
  let topo = T.custom ~name:"chaos4x2" ~nodes:4 ~cores_per_node:2 () in
  List.iter
    (fun seed ->
      let plan =
        {
          FP.none with
          seed;
          stall_prob = 0.0008;
          stall_cycles = 3_000_000;
          kill_prob = 0.0002;
          horizon = 1_000_000_000;
        }
      in
      ignore (dict_run ~topo ~plan ~ops_per_thread:100))
    [ 11; 12; 13; 14; 15 ]

(* -- death-free accounting: every op completed, every update exactly
   once in the log, even with handoffs and reposts in play -- *)

let test_accounting () =
  List.iter
    (fun seed ->
      let plan = stall_plan seed in
      let threads = T.max_threads T.tiny in
      let o = dict_run ~topo:T.tiny ~plan ~ops_per_thread:150 in
      C.Dict_chaos.check_complete ~plan ~threads ~ops_per_thread:150
        ~gen_op:(C.dict_op key_space) o)
    [ 3; 6; 9 ]

(* -- determinism: a chaos run is a pure function of (topo, plan) -- *)

let test_determinism () =
  let plan = death_plan 5 in
  let a = dict_run ~topo:T.tiny ~plan ~ops_per_thread:150 in
  let b = dict_run ~topo:T.tiny ~plan ~ops_per_thread:150 in
  Alcotest.(check string)
    "same plan, byte-identical outcome" (C.fingerprint a) (C.fingerprint b);
  Alcotest.(check string) "same end state" a.C.state b.C.state

(* -- a pinned scenario whose metrics prove the mid-batch handoff: the
   combiner stalls holding the lock with a drained batch, a waiter steals
   the tenure and finishes it -- *)

let test_handoff_metrics () =
  let hit = ref None in
  List.iter
    (fun seed ->
      if !hit = None then begin
        let o = dict_run ~topo:T.tiny ~plan:(stall_plan seed) ~ops_per_thread:150 in
        if o.C.steals > 0 && o.C.recovered > 0 then hit := Some (seed, o)
      end)
    seeds;
  match !hit with
  | Some (_, o) ->
      Alcotest.(check bool) "batch recovered by stealer" true (o.C.recovered > 0);
      Alcotest.(check int) "yet nothing was lost" o.C.ops_submitted o.C.ops_done
  | None ->
      Alcotest.fail
        "no stall seed produced a mid-batch handoff (steals + recoveries)"

(* -- random plans keep the oracle: qcheck over the plan space -- *)

let chaos_plan_gen =
  QCheck.Gen.(
    let* seed = int_range 1 10_000 in
    let* stall_prob = oneofl [ 0.0; 0.0005; 0.002 ] in
    let* stall_cycles = oneofl [ 50_000; 1_000_000; 5_000_000 ] in
    let* kill_prob = oneofl [ 0.0; 0.0002 ] in
    let* preempt_prob = oneofl [ 0.0; 0.0005 ] in
    return
      {
        FP.none with
        seed;
        stall_prob;
        stall_cycles;
        preempt_prob;
        preempt_cycles = 2_000_000;
        kill_prob;
        horizon = 1_000_000_000;
      })

let print_plan (p : FP.t) =
  Printf.sprintf "seed=%d stall=%g/%d preempt=%g kill=%g" p.FP.seed
    p.FP.stall_prob p.FP.stall_cycles p.FP.preempt_prob p.FP.kill_prob

let qcheck_oracle =
  QCheck.Test.make ~count:25 ~name:"chaos oracle holds for random fault plans"
    (QCheck.make chaos_plan_gen ~print:print_plan)
    (fun plan ->
      (* Chaos.run raises on divergence; completing is the property *)
      let o = dict_run ~topo:T.tiny ~plan ~ops_per_thread:80 in
      o.C.ops_done <= o.C.ops_submitted)

let suite =
  [
    Alcotest.test_case "dict oracle under stalls (10 seeds)" `Quick
      test_dict_stalls;
    Alcotest.test_case "pq oracle under stalls (10 seeds)" `Quick
      test_pq_stalls;
    Alcotest.test_case "dict oracle under deaths (10 seeds)" `Quick
      test_dict_deaths;
    Alcotest.test_case "pq oracle under deaths (10 seeds)" `Quick
      test_pq_deaths;
    Alcotest.test_case "explicit kills across protocol states" `Quick
      test_explicit_kills;
    Alcotest.test_case "multi-node mixed faults" `Quick test_multinode_mixed;
    Alcotest.test_case "death-free accounting" `Quick test_accounting;
    Alcotest.test_case "fault schedules are deterministic" `Quick
      test_determinism;
    Alcotest.test_case "mid-batch handoff visible in metrics" `Quick
      test_handoff_metrics;
    QCheck_alcotest.to_alcotest qcheck_oracle;
  ]

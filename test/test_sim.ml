(* Simulator tests: event queue, topology, memory model transitions,
   scheduler determinism, regions. *)

module T = Nr_sim.Topology
module S = Nr_sim.Sched
module M = Nr_sim.Mem
module C = Nr_sim.Costs

(* --- event queue --- *)

let test_eventq_order () =
  let q = Nr_sim.Eventq.create () in
  Nr_sim.Eventq.add q ~time:5 "c";
  Nr_sim.Eventq.add q ~time:1 "a";
  Nr_sim.Eventq.add q ~time:3 "b";
  Alcotest.(check (pair int string)) "first" (1, "a") (Nr_sim.Eventq.pop q);
  Alcotest.(check (pair int string)) "second" (3, "b") (Nr_sim.Eventq.pop q);
  Alcotest.(check (pair int string)) "third" (5, "c") (Nr_sim.Eventq.pop q);
  Alcotest.(check bool) "empty" true (Nr_sim.Eventq.is_empty q)

let test_eventq_fifo_ties () =
  let q = Nr_sim.Eventq.create () in
  for i = 0 to 9 do
    Nr_sim.Eventq.add q ~time:7 i
  done;
  for i = 0 to 9 do
    Alcotest.(check (pair int int)) "tie order" (7, i) (Nr_sim.Eventq.pop q)
  done

let eventq_sorted_test =
  QCheck.Test.make ~count:200 ~name:"eventq pops sorted"
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Nr_sim.Eventq.create () in
      List.iter (fun t -> Nr_sim.Eventq.add q ~time:t ()) times;
      let rec drain acc =
        if Nr_sim.Eventq.is_empty q then List.rev acc
        else drain (fst (Nr_sim.Eventq.pop q) :: acc)
      in
      drain [] = List.sort compare times)

let test_eventq_empty_pop () =
  let q = Nr_sim.Eventq.create () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Eventq.pop: empty")
    (fun () -> ignore (Nr_sim.Eventq.pop (q : unit Nr_sim.Eventq.t)))

(* Popped payloads must become unreachable: the heap used to keep the
   vacated slot (and [grow]'s filler) pointing at popped events,
   retaining their payload closures for the queue's whole lifetime. *)
let test_eventq_no_leak () =
  let q = Nr_sim.Eventq.create () in
  let finalised = ref 0 in
  for i = 1 to 32 do
    let payload = ref i in
    Gc.finalise (fun _ -> incr finalised) payload;
    Nr_sim.Eventq.add q ~time:i payload
  done;
  for _ = 1 to 32 do
    ignore (Nr_sim.Eventq.pop_payload q)
  done;
  (* [q] itself stays live: only the pops may release the payloads *)
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check int) "popped payloads collected" 32 !finalised;
  Alcotest.(check bool) "queue still usable" true (Nr_sim.Eventq.is_empty q);
  Nr_sim.Eventq.add q ~time:1 (ref 0);
  Alcotest.(check int) "length" 1 (Nr_sim.Eventq.length q)

(* A non-zero salt reorders same-time events deterministically (xor of
   the insertion sequence); times still pop in nondecreasing order and
   salt 0 stays byte-identical FIFO. *)
let test_eventq_salt () =
  let q = Nr_sim.Eventq.create ~salt:3 () in
  for i = 0 to 7 do
    Nr_sim.Eventq.add q ~time:7 i
  done;
  let order = List.init 8 (fun _ -> snd (Nr_sim.Eventq.pop q)) in
  Alcotest.(check (list int)) "xor-permuted ties" [ 3; 2; 1; 0; 7; 6; 5; 4 ]
    order;
  (* distinct times are unaffected by the salt *)
  let q = Nr_sim.Eventq.create ~salt:12345 () in
  List.iter (fun t -> Nr_sim.Eventq.add q ~time:t t) [ 5; 1; 3; 2; 4 ];
  let times = List.init 5 (fun _ -> fst (Nr_sim.Eventq.pop q)) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] times

(* --- topology --- *)

let test_topology_placement () =
  let t = T.intel in
  Alcotest.(check int) "112 threads" 112 (T.max_threads t);
  Alcotest.(check int) "28 per node" 28 (T.threads_per_node t);
  Alcotest.(check int) "tid 0 on node 0" 0 (T.node_of_thread t 0);
  Alcotest.(check int) "tid 27 on node 0" 0 (T.node_of_thread t 27);
  Alcotest.(check int) "tid 28 on node 1" 1 (T.node_of_thread t 28);
  Alcotest.(check int) "tid 111 on node 3" 3 (T.node_of_thread t 111);
  (* SMT siblings share a core *)
  Alcotest.(check int) "hyperthread sibling" (T.core_of_thread t 0)
    (T.core_of_thread t 14);
  Alcotest.check_raises "tid out of range"
    (Invalid_argument "Topology: thread id 112 out of range [0,112)")
    (fun () -> ignore (T.node_of_thread t 112))

let test_topology_amd () =
  let t = T.amd in
  Alcotest.(check int) "48 threads" 48 (T.max_threads t);
  Alcotest.(check bool) "incomplete directory" true t.T.incomplete_directory

(* --- memory model --- *)

let fresh_ctx () = (T.intel, C.default, Nr_sim.Sim_stats.create ())

let test_mem_cold_read_local () =
  let topo, c, st = fresh_ctx () in
  let l = M.line ~home:0 in
  let fin = M.access topo c st ~node:0 ~core:0 ~now:0 l M.Read in
  Alcotest.(check int) "local memory read" c.C.mem_local fin

let test_mem_l1_hit () =
  let topo, c, st = fresh_ctx () in
  let l = M.line ~home:0 in
  let t1 = M.access topo c st ~node:0 ~core:0 ~now:0 l M.Read in
  let t2 = M.access topo c st ~node:0 ~core:0 ~now:t1 l M.Read in
  Alcotest.(check int) "l1 hit" c.C.l1_hit (t2 - t1)

let test_mem_l3_hit () =
  let topo, c, st = fresh_ctx () in
  let l = M.line ~home:0 in
  let t1 = M.access topo c st ~node:0 ~core:0 ~now:0 l M.Read in
  (* another core, same node *)
  let t2 = M.access topo c st ~node:0 ~core:1 ~now:t1 l M.Read in
  Alcotest.(check int) "l3 hit" c.C.l3_hit (t2 - t1)

let test_mem_remote_dirty_read () =
  let topo, c, st = fresh_ctx () in
  let l = M.line ~home:0 in
  ignore (M.access topo c st ~node:0 ~core:0 ~now:0 l M.Write);
  (* line modified at node 0; node 1 reads: dirty transfer, downgraded *)
  let fin = M.access topo c st ~node:1 ~core:20 ~now:1000 l M.Read in
  Alcotest.(check bool) "remote dirty cost" true (fin - 1000 >= c.C.remote_dirty);
  Alcotest.(check int) "downgraded" (-1) l.M.owner;
  Alcotest.(check int) "both sharers" 0b11 l.M.sharers

let test_mem_write_invalidates () =
  let topo, c, st = fresh_ctx () in
  let l = M.line ~home:0 in
  ignore (M.access topo c st ~node:0 ~core:0 ~now:0 l M.Read);
  ignore (M.access topo c st ~node:1 ~core:20 ~now:500 l M.Read);
  ignore (M.access topo c st ~node:2 ~core:40 ~now:5000 l M.Write);
  Alcotest.(check int) "owner is node 2" 2 l.M.owner;
  Alcotest.(check int) "only node 2 shares" (1 lsl 2) l.M.sharers

let test_mem_store_buffer () =
  let topo, c, st = fresh_ctx () in
  let l = M.line ~home:0 in
  ignore (M.access topo c st ~node:0 ~core:0 ~now:0 l M.Write);
  (* a remote write returns quickly (store buffer)... *)
  let fin = M.access topo c st ~node:1 ~core:20 ~now:10_000 l M.Write in
  Alcotest.(check bool) "store issue cost small" true (fin - 10_000 <= 20);
  (* ...but the next reader waits for the background transfer *)
  let fin2 = M.access topo c st ~node:2 ~core:40 ~now:10_000 l M.Read in
  Alcotest.(check bool) "reader queues behind transfer" true
    (fin2 - 10_000 > c.C.remote_dirty)

let test_mem_cas_serializes () =
  let topo, c, st = fresh_ctx () in
  ignore c;
  let l = M.line ~home:0 in
  (* two CASes from different nodes at the same instant serialize *)
  let f1 = M.access topo c st ~node:0 ~core:0 ~now:0 l M.Cas in
  let f2 = M.access topo c st ~node:1 ~core:20 ~now:0 l M.Cas in
  Alcotest.(check bool) "second waits for first" true (f2 >= f1 + c.C.remote_dirty)

let test_mem_probe_penalty () =
  let c = C.default in
  let st = Nr_sim.Sim_stats.create () in
  let l = M.line ~home:0 in
  (* node-local sharing on AMD pays the broadcast probe *)
  ignore (M.access T.amd c st ~node:0 ~core:0 ~now:0 l M.Read);
  let t = M.access T.amd c st ~node:0 ~core:1 ~now:1000 l M.Read in
  Alcotest.(check int) "probe added" (c.C.l3_hit + c.C.probe) (t - 1000)

(* --- scheduler --- *)

let test_sched_requires_thread () =
  Alcotest.check_raises "now outside sim"
    (Invalid_argument "Sched: called outside a simulated thread") (fun () ->
      ignore (S.now ()))

let test_sched_virtual_time () =
  let sched = S.create T.tiny in
  let final = ref 0 in
  S.spawn sched ~tid:0 (fun () ->
      S.work 100;
      S.work 50;
      final := S.now ());
  S.run sched;
  Alcotest.(check int) "time accumulates" 150 !final

let test_sched_fairness () =
  (* the scheduler always runs the thread with the smallest virtual time,
     so all threads progress at comparable virtual rates *)
  let sched = S.create T.tiny in
  let finish = Array.make 4 0 in
  for tid = 0 to 3 do
    S.spawn sched ~tid (fun () ->
        for _ = 1 to 100 do
          S.work 10
        done;
        finish.(tid) <- S.now ())
  done;
  S.run sched;
  Array.iter (fun f -> Alcotest.(check int) "all finish together" 1000 f) finish

let test_sched_determinism () =
  let fingerprint () =
    let sched = S.create T.intel in
    let module R = (val Nr_runtime.Runtime_sim.make sched) in
    let acc = R.cell 0 in
    for tid = 0 to 31 do
      S.spawn sched ~tid (fun () ->
          for i = 1 to 50 do
            ignore (R.faa acc i);
            R.yield ()
          done)
    done;
    S.run sched;
    let st = S.stats sched in
    ( Nr_sim.Sim_stats.total_accesses st,
      st.Nr_sim.Sim_stats.cycles_memory,
      R.read acc )
  in
  let a = fingerprint () and b = fingerprint () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

let test_sched_rejects_nested_run () =
  let sched = S.create T.tiny in
  S.spawn sched ~tid:0 (fun () ->
      let inner = S.create T.tiny in
      match S.run inner with
      | () -> Alcotest.fail "nested run should fail"
      | exception Invalid_argument _ -> ());
  S.run sched

(* --- runtime over the sim --- *)

let test_runtime_cells () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let c = R.cell 10 in
  S.spawn sched ~tid:0 (fun () ->
      Alcotest.(check int) "read" 10 (R.read c);
      R.write c 20;
      Alcotest.(check int) "write" 20 (R.read c);
      Alcotest.(check bool) "cas ok" true (R.cas c 20 30);
      Alcotest.(check bool) "cas stale" false (R.cas c 20 40);
      Alcotest.(check int) "faa" 30 (R.faa c 5);
      Alcotest.(check int) "after faa" 35 (R.read c);
      let arr = Array.init 10 (fun i -> R.cell i) in
      Alcotest.(check (array int)) "read_all"
        (Array.init 10 (fun i -> i))
        (R.read_all arr));
  S.run sched

let test_runtime_identity () =
  let sched = S.create T.intel in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  S.spawn sched ~tid:30 (fun () ->
      Alcotest.(check int) "tid" 30 (R.tid ());
      Alcotest.(check int) "node" 1 (R.my_node ());
      Alcotest.(check int) "nodes" 4 (R.num_nodes ());
      Alcotest.(check int) "tpn" 28 (R.threads_per_node ()));
  S.run sched

let suite =
  [
    Alcotest.test_case "eventq order" `Quick test_eventq_order;
    Alcotest.test_case "eventq fifo ties" `Quick test_eventq_fifo_ties;
    QCheck_alcotest.to_alcotest eventq_sorted_test;
    Alcotest.test_case "eventq empty pop" `Quick test_eventq_empty_pop;
    Alcotest.test_case "eventq popped payloads unreachable" `Quick
      test_eventq_no_leak;
    Alcotest.test_case "eventq tie-break salt" `Quick test_eventq_salt;
    Alcotest.test_case "topology placement" `Quick test_topology_placement;
    Alcotest.test_case "topology amd" `Quick test_topology_amd;
    Alcotest.test_case "mem cold read" `Quick test_mem_cold_read_local;
    Alcotest.test_case "mem l1 hit" `Quick test_mem_l1_hit;
    Alcotest.test_case "mem l3 hit" `Quick test_mem_l3_hit;
    Alcotest.test_case "mem remote dirty" `Quick test_mem_remote_dirty_read;
    Alcotest.test_case "mem write invalidates" `Quick test_mem_write_invalidates;
    Alcotest.test_case "mem store buffer" `Quick test_mem_store_buffer;
    Alcotest.test_case "mem cas serializes" `Quick test_mem_cas_serializes;
    Alcotest.test_case "mem probe penalty" `Quick test_mem_probe_penalty;
    Alcotest.test_case "sched requires thread" `Quick test_sched_requires_thread;
    Alcotest.test_case "sched virtual time" `Quick test_sched_virtual_time;
    Alcotest.test_case "sched fairness" `Quick test_sched_fairness;
    Alcotest.test_case "sched determinism" `Quick test_sched_determinism;
    Alcotest.test_case "sched rejects nested run" `Quick test_sched_rejects_nested_run;
    Alcotest.test_case "runtime cells" `Quick test_runtime_cells;
    Alcotest.test_case "runtime identity" `Quick test_runtime_identity;
  ]

(* Baseline correctness tests on the simulator: the lock wrappers must be
   linearizable like NR; the lock-free structures must keep their
   invariants under heavy interleaving. *)

module S = Nr_sim.Sched
module T = Nr_sim.Topology

module Counter = struct
  type t = { mutable v : int }
  type op = Incr | Get
  type result = int

  let create () = { v = 0 }

  let execute t = function
    | Incr ->
        t.v <- t.v + 1;
        t.v
    | Get -> t.v

  let is_read_only = function Get -> true | Incr -> false
  let footprint _ _ = Nr_runtime.Footprint.v ~key:0 ~reads:1 ()
  let lines _ = 4
  let pp_op ppf _ = Format.pp_print_string ppf "op"
end

(* Generic permutation test for any black-box method. *)
let wrapper_scenario build =
  let sched = S.create T.intel in
  let rt = Nr_runtime.Runtime_sim.make sched in
  let exec = build rt in
  let threads = 24 in
  let per_thread = 60 in
  let results = Array.make threads [] in
  for tid = 0 to threads - 1 do
    S.spawn sched ~tid (fun () ->
        for _ = 1 to per_thread do
          let r = exec Counter.Incr in
          results.(tid) <- r :: results.(tid);
          let g = exec Counter.Get in
          if g < r then Alcotest.fail "stale read"
        done)
  done;
  S.run sched;
  let all = Array.to_list results |> List.concat |> List.sort compare in
  let n = threads * per_thread in
  Alcotest.(check (list int)) "permutation of 1..N"
    (List.init n (fun i -> i + 1))
    all

let test_single_lock () =
  wrapper_scenario (fun rt ->
      let module R = (val rt : Nr_runtime.Runtime_intf.S) in
      let module M = Nr_baselines.Single_lock.Make (R) (Counter) in
      let t = M.create (fun () -> Counter.create ()) in
      M.execute t)

let test_rwl () =
  wrapper_scenario (fun rt ->
      let module R = (val rt : Nr_runtime.Runtime_intf.S) in
      let module M = Nr_baselines.Rwl_ds.Make (R) (Counter) in
      let t = M.create (fun () -> Counter.create ()) in
      M.execute t)

let test_fc () =
  wrapper_scenario (fun rt ->
      let module R = (val rt : Nr_runtime.Runtime_intf.S) in
      let module M = Nr_baselines.Fc_ds.Make (R) (Counter) in
      let t = M.create ~rw_reads:false (fun () -> Counter.create ()) in
      M.execute t)

let test_fc_plus () =
  wrapper_scenario (fun rt ->
      let module R = (val rt : Nr_runtime.Runtime_intf.S) in
      let module M = Nr_baselines.Fc_ds.Make (R) (Counter) in
      let t = M.create ~rw_reads:true (fun () -> Counter.create ()) in
      M.execute t)

(* --- Treiber stack --- *)

let test_lf_stack_sequential () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Lf = Nr_baselines.Lf_stack.Make (R) in
  let t = Lf.create () in
  Alcotest.(check (option int)) "pop empty" None (Lf.pop t);
  Lf.push t 1;
  Lf.push t 2;
  Alcotest.(check (option int)) "peek" (Some 2) (Lf.peek t);
  Alcotest.(check (option int)) "lifo" (Some 2) (Lf.pop t);
  Alcotest.(check (option int)) "lifo2" (Some 1) (Lf.pop t);
  Alcotest.(check int) "empty" 0 (Lf.length t)

let test_lf_stack_concurrent () =
  let sched = S.create T.intel in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Lf = Nr_baselines.Lf_stack.Make (R) in
  let t = Lf.create () in
  let threads = 16 in
  let per_thread = 100 in
  let popped = Array.make threads [] in
  for tid = 0 to threads - 1 do
    S.spawn sched ~tid (fun () ->
        for i = 1 to per_thread do
          Lf.push t ((tid * 10_000) + i);
          if i mod 2 = 0 then
            match Lf.pop t with
            | Some v -> popped.(tid) <- v :: popped.(tid)
            | None -> Alcotest.fail "pop of non-empty stack returned None"
        done)
  done;
  S.run sched;
  let all_popped = Array.to_list popped |> List.concat in
  (* uniqueness: no element popped twice *)
  Alcotest.(check int) "pops distinct"
    (List.length (List.sort_uniq compare all_popped))
    (List.length all_popped);
  (* conservation: pushes = pops + remaining *)
  Alcotest.(check int) "conservation"
    (threads * per_thread)
    (List.length all_popped + Lf.length t)

(* --- lock-free skip list --- *)

let test_lf_skiplist_sequential () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Lf = Nr_baselines.Lf_skiplist.Make (R) in
  let t = Lf.create () in
  Alcotest.(check bool) "add" true (Lf.add t 5 50);
  Alcotest.(check bool) "add dup" false (Lf.add t 5 51);
  Alcotest.(check (option int)) "get" (Some 50) (Lf.get t 5);
  Alcotest.(check bool) "mem absent" false (Lf.mem t 6);
  Alcotest.(check (option int)) "remove" (Some 50) (Lf.remove t 5);
  Alcotest.(check (option int)) "remove absent" None (Lf.remove t 5);
  ignore (Lf.add t 3 30);
  ignore (Lf.add t 1 10);
  ignore (Lf.add t 2 20);
  Alcotest.(check (option (pair int int))) "min" (Some (1, 10)) (Lf.min t);
  Alcotest.(check (option (pair int int)))
    "remove_min" (Some (1, 10)) (Lf.remove_min t);
  Alcotest.(check (list (pair int int)))
    "sorted remains" [ (2, 20); (3, 30) ] (Lf.to_list t)

let test_lf_skiplist_concurrent_inserts () =
  let sched = S.create T.intel in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Lf = Nr_baselines.Lf_skiplist.Make (R) in
  let t = Lf.create () in
  let threads = 16 in
  let per_thread = 100 in
  for tid = 0 to threads - 1 do
    S.spawn sched ~tid (fun () ->
        for i = 1 to per_thread do
          if not (Lf.add t ((tid * 10_000) + i) tid) then
            Alcotest.fail "distinct key rejected"
        done)
  done;
  S.run sched;
  Alcotest.(check int) "all present" (threads * per_thread) (Lf.length t);
  (* sortedness *)
  let l = Lf.to_list t in
  Alcotest.(check (list (pair int int))) "sorted" (List.sort compare l) l

let test_lf_skiplist_contended_same_keys () =
  (* all threads fight over the same tiny key space; each successful
     remove must correspond to a successful add *)
  let sched = S.create T.intel in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Lf = Nr_baselines.Lf_skiplist.Make (R) in
  let t = Lf.create () in
  let threads = 16 in
  let adds = Array.make threads 0 in
  let removes = Array.make threads 0 in
  for tid = 0 to threads - 1 do
    let rng = Nr_workload.Prng.create ~seed:(tid + 100) in
    S.spawn sched ~tid (fun () ->
        for _ = 1 to 150 do
          let k = Nr_workload.Prng.below rng 8 in
          if Nr_workload.Prng.bool rng then begin
            if Lf.add t k tid then adds.(tid) <- adds.(tid) + 1
          end
          else if Lf.remove t k <> None then
            removes.(tid) <- removes.(tid) + 1
        done)
  done;
  S.run sched;
  let total_adds = Array.fold_left ( + ) 0 adds in
  let total_removes = Array.fold_left ( + ) 0 removes in
  Alcotest.(check int) "adds - removes = remaining"
    (total_adds - total_removes)
    (Lf.length t)

let test_lf_skiplist_concurrent_remove_min () =
  let sched = S.create T.intel in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Lf = Nr_baselines.Lf_skiplist.Make (R) in
  let t = Lf.create () in
  let n = 800 in
  for i = 1 to n do
    ignore (Lf.add t i i)
  done;
  let threads = 16 in
  let got = Array.make threads [] in
  for tid = 0 to threads - 1 do
    S.spawn sched ~tid (fun () ->
        for _ = 1 to 40 do
          match Lf.remove_min t with
          | Some (k, _) -> got.(tid) <- k :: got.(tid)
          | None -> Alcotest.fail "premature empty"
        done)
  done;
  S.run sched;
  let all = Array.to_list got |> List.concat |> List.sort compare in
  (* each element removed at most once, and the removed set is exactly the
     smallest 640 elements (deleteMin removes minima) *)
  Alcotest.(check (list int)) "each removed once"
    (List.sort_uniq compare all)
    all;
  Alcotest.(check int) "640 removed" (threads * 40) (List.length all);
  Alcotest.(check int) "remaining" (n - (threads * 40)) (Lf.length t)

(* --- NUMA-aware stack --- *)

let test_na_stack_conservation () =
  let sched = S.create T.intel in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Na = Nr_baselines.Na_stack.Make (R) in
  let t = Na.create () in
  let threads = 32 in
  let pushes = Array.make threads 0 in
  let pops = Array.make threads [] in
  for tid = 0 to threads - 1 do
    let rng = Nr_workload.Prng.create ~seed:(tid + 7) in
    S.spawn sched ~tid (fun () ->
        for i = 1 to 100 do
          if Nr_workload.Prng.bool rng then begin
            Na.push t ((tid * 10_000) + i);
            pushes.(tid) <- pushes.(tid) + 1
          end
          else
            match Na.pop t with
            | Some v -> pops.(tid) <- v :: pops.(tid)
            | None -> ()
        done)
  done;
  S.run sched;
  let total_push = Array.fold_left ( + ) 0 pushes in
  let all_pops = Array.to_list pops |> List.concat in
  Alcotest.(check int) "pops distinct"
    (List.length (List.sort_uniq compare all_pops))
    (List.length all_pops);
  Alcotest.(check int) "conservation" total_push
    (List.length all_pops + Na.length t)

let test_na_stack_eliminates () =
  let sched = S.create T.intel in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Na = Nr_baselines.Na_stack.Make (R) in
  let t = Na.create () in
  for tid = 0 to 27 do
    S.spawn sched ~tid (fun () ->
        for i = 1 to 50 do
          if tid land 1 = 0 then Na.push t i else ignore (Na.pop t)
        done)
  done;
  S.run sched;
  Alcotest.(check bool) "some pairs eliminated" true
    (t.Na.stats.Na.push_eliminated > 0)

let suite =
  [
    Alcotest.test_case "SL wrapper linearizable" `Quick test_single_lock;
    Alcotest.test_case "RWL wrapper linearizable" `Quick test_rwl;
    Alcotest.test_case "FC wrapper linearizable" `Quick test_fc;
    Alcotest.test_case "FC+ wrapper linearizable" `Quick test_fc_plus;
    Alcotest.test_case "treiber sequential" `Quick test_lf_stack_sequential;
    Alcotest.test_case "treiber concurrent" `Quick test_lf_stack_concurrent;
    Alcotest.test_case "lf skiplist sequential" `Quick
      test_lf_skiplist_sequential;
    Alcotest.test_case "lf skiplist concurrent inserts" `Quick
      test_lf_skiplist_concurrent_inserts;
    Alcotest.test_case "lf skiplist contended keys" `Quick
      test_lf_skiplist_contended_same_keys;
    Alcotest.test_case "lf skiplist concurrent deleteMin" `Quick
      test_lf_skiplist_concurrent_remove_min;
    Alcotest.test_case "na stack conservation" `Quick test_na_stack_conservation;
    Alcotest.test_case "na stack eliminates" `Quick test_na_stack_eliminates;
  ]

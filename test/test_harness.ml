(* Harness tests: driver measurement, table rendering, method registry,
   figure plumbing at miniature scale. *)

open Nr_harness

let tiny_params =
  {
    Params.topo = Nr_sim.Topology.tiny;
    threads = [ 1; 4 ];
    warmup_us = 2.0;
    measure_us = 10.0;
    population = 200;
    seed = 1;
    latency = false;
  }

let test_driver_counts_ops () =
  let r =
    Driver.run_sim ~topo:Nr_sim.Topology.tiny ~threads:2 ~warmup_us:1.0
      ~measure_us:10.0 (fun rt ~tid ->
        ignore tid;
        let module R = (val rt : Nr_runtime.Runtime_intf.S) in
        fun () -> R.work 100)
  in
  Alcotest.(check bool) "ops counted" true (r.Driver.total_ops > 0);
  (* 2 threads x one op per 100 cycles over 10us at 2GHz = ~400 ops *)
  Alcotest.(check bool) "plausible count" true
    (r.Driver.total_ops > 200 && r.Driver.total_ops < 800);
  Alcotest.(check bool) "throughput positive" true (r.Driver.ops_per_us > 0.0)

let test_driver_rejects_bad_threads () =
  Alcotest.check_raises "too many threads"
    (Invalid_argument "Driver.run_sim: thread count out of range for topology")
    (fun () ->
      ignore
        (Driver.run_sim ~topo:Nr_sim.Topology.tiny ~threads:100 ~warmup_us:1.0
           ~measure_us:1.0 (fun _ ~tid:_ () -> ())))

let test_method_names () =
  List.iter
    (fun m ->
      match Method.of_name (Method.name m) with
      | Some m' when m = m' -> ()
      | _ -> Alcotest.failf "name roundtrip failed for %s" (Method.name m))
    [ Method.SL; Method.RWL; Method.FC; Method.FCplus; Method.LF; Method.NA; Method.NR ]

let test_table_render () =
  let fig =
    {
      Table.id = "t1";
      title = "test";
      x_label = "threads";
      y_label = "ops/us";
      series =
        [
          { Table.label = "A"; points = [ Table.pt 1 1.5; Table.pt 2 3.0 ] };
          { Table.label = "B"; points = [ Table.pt 1 0.5 ] };
        ];
      notes = [ "note" ];
    }
  in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Table.render ppf fig;
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "has title" true
    (Astring_contains.contains s "test");
  Alcotest.(check bool) "has dash for missing point" true
    (Astring_contains.contains s "-");
  match Table.winner_at_max fig with
  | Some ("A", 3.0) -> ()
  | _ -> Alcotest.fail "winner_at_max"

let test_figure_registry () =
  Alcotest.(check bool) "has fig5" true (Figures.find "fig5" <> None);
  Alcotest.(check bool) "has fig14" true (Figures.find "fig14" <> None);
  Alcotest.(check bool) "has shard" true (Figures.find "shard" <> None);
  Alcotest.(check bool) "has durable" true (Figures.find "durable" <> None);
  Alcotest.(check bool) "has cna" true (Figures.find "cna" <> None);
  Alcotest.(check bool) "has txn" true (Figures.find "txn" <> None);
  Alcotest.(check bool) "unknown id" true (Figures.find "nope" = None);
  Alcotest.(check int) "17 groups" 17 (List.length (Figures.ids ()))

(* Cross-method smoke at miniature scale: every black-box method produces a
   working executor and nonzero throughput on the PQ workload. *)
let test_pq_all_methods_run () =
  List.iter
    (fun m ->
      let s =
        Exp_pq.Sl_exp.series tiny_params m ~update_pct:50 ~e:0
      in
      List.iter
        (fun (p : Table.point) ->
          if p.Table.y <= 0.0 then
            Alcotest.failf "%s at %d threads produced no ops" (Method.name m)
              p.Table.x)
        s.Table.points)
    [ Method.NR; Method.LF; Method.FCplus; Method.FC; Method.RWL; Method.SL ]

(* Cross-runtime equivalence: the same seeded workload on the simulator and
   on real domains leaves semantically identical structures. *)
let test_cross_runtime_equivalence () =
  let ops tid =
    let rng = Nr_workload.Prng.create ~seed:(tid + 1) in
    List.init 100 (fun _ ->
        let k = Nr_workload.Prng.below rng 40 in
        if Nr_workload.Prng.bool rng then Nr_seqds.Dict_ops.Insert (k, k)
        else Nr_seqds.Dict_ops.Remove k)
  in
  (* simulator *)
  let sim_result =
    let sched = Nr_sim.Sched.create Nr_sim.Topology.tiny in
    let module R = (val Nr_runtime.Runtime_sim.make sched) in
    let module NR = Nr_core.Node_replication.Make (R) (Nr_seqds.Skiplist_dict) in
    let nr = NR.create (fun () -> Nr_seqds.Skiplist_dict.create ()) in
    (* single thread so the op order is fixed across runtimes *)
    Nr_sim.Sched.spawn sched ~tid:0 (fun () ->
        List.iter (fun op -> ignore (NR.execute nr op)) (ops 0));
    Nr_sim.Sched.run sched;
    NR.Unsafe.sync nr;
    Nr_seqds.Skiplist_dict.to_list (NR.Unsafe.replica nr 0)
  in
  (* domains *)
  let dom_result =
    let module R = (val Nr_runtime.Runtime_domains.make Nr_sim.Topology.tiny) in
    let module NR = Nr_core.Node_replication.Make (R) (Nr_seqds.Skiplist_dict) in
    let nr = NR.create (fun () -> Nr_seqds.Skiplist_dict.create ()) in
    Nr_runtime.Runtime_domains.parallel_run ~nthreads:1 (fun tid ->
        List.iter (fun op -> ignore (NR.execute nr op)) (ops tid));
    Nr_runtime.Runtime_domains.register ~tid:0;
    NR.Unsafe.sync nr;
    Nr_seqds.Skiplist_dict.to_list (NR.Unsafe.replica nr 0)
  in
  Alcotest.(check (list (pair int int))) "same final structure" sim_result
    dom_result

let suite =
  [
    Alcotest.test_case "driver counts ops" `Quick test_driver_counts_ops;
    Alcotest.test_case "driver validates threads" `Quick
      test_driver_rejects_bad_threads;
    Alcotest.test_case "method names" `Quick test_method_names;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "figure registry" `Quick test_figure_registry;
    Alcotest.test_case "pq all methods run" `Slow test_pq_all_methods_run;
    Alcotest.test_case "cross-runtime equivalence" `Quick
      test_cross_runtime_equivalence;
  ]

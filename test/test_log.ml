(* Shared-log tests: reservation, fill/consume protocol, generation stamps
   across wrap-around, completedTail arithmetic, recycling. *)

module S = Nr_sim.Sched
module T = Nr_sim.Topology

let test_append_get () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Log = Nr_core.Log.Make (R) in
  let log = Log.create ~size:8 ~nodes:2 () in
  let start =
    Log.append log
      [| ("a", 0); ("b", 1) |]
      ~origin_node:0
      ~on_full:(fun () -> ())
  in
  Alcotest.(check int) "first batch at 0" 0 start;
  (match Log.get log 0 with
  | Some e ->
      Alcotest.(check string) "op" "a" e.Log.op;
      Alcotest.(check int) "origin node" 0 e.Log.origin_node;
      Alcotest.(check int) "origin slot" 0 e.Log.origin_slot
  | None -> Alcotest.fail "entry 0 missing");
  (match Log.get log 1 with
  | Some e -> Alcotest.(check string) "op b" "b" e.Log.op
  | None -> Alcotest.fail "entry 1 missing");
  Alcotest.(check bool) "unfilled entry" true (Log.get log 2 = None);
  Alcotest.(check int) "tail" 2 (Log.tail log)

let test_generation_stamps () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Log = Nr_core.Log.Make (R) in
  let log = Log.create ~size:4 ~nodes:1 () in
  (* fill a full lap and consume it *)
  for i = 0 to 3 do
    ignore
      (Log.append log
         [| (Printf.sprintf "lap0-%d" i, 0) |]
         ~origin_node:0
         ~on_full:(fun () -> ()))
  done;
  Log.set_local_tail log 0 4;
  (* second lap reuses the same slots with a new generation *)
  let start =
    Log.append log [| ("lap1-0", 0) |] ~origin_node:0 ~on_full:(fun () -> ())
  in
  Alcotest.(check int) "absolute index advances" 4 start;
  (match Log.get log 4 with
  | Some e -> Alcotest.(check string) "new lap entry" "lap1-0" e.Log.op
  | None -> Alcotest.fail "lap-1 entry unreadable");
  (* index 0 now holds a *newer* generation: reading the old index must
     not hand back a stale entry *)
  Alcotest.(check bool) "old index reports empty" true (Log.get log 0 = None)

let test_log_full_blocks_and_recycles () =
  (* an appender facing a full log calls on_full and retries; advancing the
     laggard's local tail unblocks it *)
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Log = Nr_core.Log.Make (R) in
  let log = Log.create ~size:4 ~nodes:2 () in
  let on_full_calls = ref 0 in
  S.spawn sched ~tid:0 (fun () ->
      for i = 0 to 9 do
        ignore
          (Log.append log
             [| (string_of_int i, 0) |]
             ~origin_node:0
             ~on_full:(fun () ->
               incr on_full_calls;
               (* both replicas consume everything available *)
               Log.set_local_tail log 0 (Log.tail log);
               Log.set_local_tail log 1 (Log.tail log)))
      done);
  S.run sched;
  Alcotest.(check int) "all appended" 10 (Log.tail log);
  Alcotest.(check bool) "stalled at least once" true (!on_full_calls > 0)

let test_advance_completed () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Log = Nr_core.Log.Make (R) in
  let log = Log.create ~size:16 ~nodes:1 () in
  Log.advance_completed log 5;
  Alcotest.(check int) "advanced" 5 (Log.completed log);
  Log.advance_completed log 3;
  Alcotest.(check int) "never regresses" 5 (Log.completed log);
  Log.advance_completed log 9;
  Alcotest.(check int) "advanced again" 9 (Log.completed log)

let test_read_filled () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Log = Nr_core.Log.Make (R) in
  let log = Log.create ~size:8 ~nodes:1 () in
  ignore
    (Log.append log
       [| ("x", 0); ("y", 1) |]
       ~origin_node:0
       ~on_full:(fun () -> ()));
  let buf = Log.batch () in
  Alcotest.(check int) "filled prefix of window" 2 (Log.read_filled log buf 0 4);
  Alcotest.(check string) "x via flat accessor" "x" (Log.op_at log 0);
  Alcotest.(check string) "y via flat accessor" "y" (Log.op_at log 1);
  Alcotest.(check int) "origin node" 0 (Log.origin_node_at log 1);
  Alcotest.(check int) "origin slot" 1 (Log.origin_slot_at log 1);
  Alcotest.(check int) "window starting at a hole" 0
    (Log.read_filled log buf 2 2);
  Alcotest.(check int) "empty window" 0 (Log.read_filled log buf 0 0)

let test_holes_block_prefix () =
  (* a reserved-but-unfilled entry hides everything after it from
     [read_filled], even if later entries are already published *)
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Log = Nr_core.Log.Make (R) in
  let log = Log.create ~size:8 ~nodes:1 () in
  let h = Log.reserve log 1 ~on_full:(fun () -> ()) in
  Alcotest.(check int) "hole reserved at 0" 0 h;
  ignore (Log.append log [| ("late", 3) |] ~origin_node:1 ~on_full:(fun () -> ()));
  let buf = Log.batch () in
  Alcotest.(check int) "hole blocks the prefix" 0 (Log.read_filled log buf 0 2);
  Alcotest.(check bool) "entry after hole filled" true (Log.is_filled log 1);
  Log.fill log h ~op:"early" ~origin_node:0 ~origin_slot:7;
  Alcotest.(check int) "prefix complete after fill" 2
    (Log.read_filled log buf 0 2);
  Alcotest.(check int) "origin slot survives packing" 7
    (Log.origin_slot_at log 0)

let test_fill_batch_wraparound () =
  (* a batch reserved across the wrap boundary publishes the correct lap
     stamp on each side of the seam *)
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Log = Nr_core.Log.Make (R) in
  let log = Log.create ~size:4 ~nodes:1 () in
  for i = 0 to 2 do
    ignore
      (Log.append log
         [| (Printf.sprintf "pre-%d" i, 0) |]
         ~origin_node:0
         ~on_full:(fun () -> ()))
  done;
  Log.set_local_tail log 0 3;
  let ops = [| Some "w0"; Some "w1"; Some "w2" |] in
  let slots = [| 0; 1; 2 |] in
  let start =
    Log.append_batch log ~ops ~slots ~n:3 ~origin_node:0
      ~on_full:(fun () -> Log.set_local_tail log 0 (Log.tail log))
  in
  Alcotest.(check int) "batch starts at 3" 3 start;
  let buf = Log.batch () in
  Alcotest.(check int) "whole batch readable" 3 (Log.read_filled log buf 3 3);
  Alcotest.(check string) "entry before the seam" "w0" (Log.op_at log 3);
  Alcotest.(check string) "entry after the seam" "w1" (Log.op_at log 4);
  Alcotest.(check string) "last entry" "w2" (Log.op_at log 5);
  (* slot 0 now belongs to lap 1: the old absolute index reads empty *)
  Alcotest.(check bool) "recycled index reports empty" true
    (Log.get log 0 = None)

let test_concurrent_reservations () =
  (* concurrent combiners reserve disjoint ranges *)
  let sched = S.create T.intel in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Log = Nr_core.Log.Make (R) in
  let log = Log.create ~size:4096 ~nodes:4 () in
  let threads = 8 in
  let appends_per_thread = 40 in
  for tid = 0 to threads - 1 do
    S.spawn sched ~tid (fun () ->
        for i = 0 to appends_per_thread - 1 do
          let batch =
            Array.init ((i mod 3) + 1) (fun k ->
                (Printf.sprintf "%d.%d.%d" tid i k, 0))
          in
          let start =
            Log.append log batch ~origin_node:(R.my_node ())
              ~on_full:(fun () -> ())
          in
          (* our own entries must be readable right after filling *)
          Array.iteri
            (fun k (op, _) ->
              match Log.get log (start + k) with
              | Some e when e.Log.op = op -> ()
              | Some _ -> Alcotest.fail "entry overwritten by another batch"
              | None -> Alcotest.fail "own entry unreadable")
            batch
        done)
  done;
  S.run sched;
  (* every reserved entry is filled and unique *)
  let tail = Log.tail log in
  let seen = Hashtbl.create 512 in
  for i = 0 to tail - 1 do
    match Log.get log i with
    | Some e ->
        if Hashtbl.mem seen e.Log.op then Alcotest.fail "duplicate entry";
        Hashtbl.add seen e.Log.op ()
    | None -> Alcotest.failf "hole at %d" i
  done

let test_invalid_args () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Log = Nr_core.Log.Make (R) in
  (match Log.create ~size:1 ~nodes:1 () with
  | _ -> Alcotest.fail "size 1 accepted"
  | exception Invalid_argument _ -> ());
  let log = Log.create ~size:8 ~nodes:1 () in
  (match Log.append log [||] ~origin_node:0 ~on_full:(fun () -> ()) with
  | _ -> Alcotest.fail "empty batch accepted"
  | exception Invalid_argument _ -> ())

let suite =
  [
    Alcotest.test_case "append/get" `Quick test_append_get;
    Alcotest.test_case "generation stamps" `Quick test_generation_stamps;
    Alcotest.test_case "full log recycling" `Quick
      test_log_full_blocks_and_recycles;
    Alcotest.test_case "advance completed" `Quick test_advance_completed;
    Alcotest.test_case "read_filled" `Quick test_read_filled;
    Alcotest.test_case "holes block the filled prefix" `Quick
      test_holes_block_prefix;
    Alcotest.test_case "fill_batch across wraparound" `Quick
      test_fill_batch_wraparound;
    Alcotest.test_case "concurrent reservations" `Quick
      test_concurrent_reservations;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
  ]

(* Replication fault-tolerance tests: WAIT ack tracking, chained
   followers serving PSYNC off their own AOF, the session reconnect path
   with jittered backoff, the background-compaction seam, failover
   promotion of the real server binary — and the seeded partition/crash
   chaos sweep checking the extended Durable spec (a write acked at
   [WAIT n] survives killing every process at once, because [n] follower
   crash images still hold it). *)

module C = Nr_kvstore.Command
module Store = Nr_kvstore.Store
module Aof = Nr_persist.Aof
module Frame = Nr_persist.Frame
module Vfs = Nr_persist.Vfs
module Sim_fs = Nr_persist.Sim_fs
module Persister = Nr_persist.Persister
module Replication = Nr_persist.Replication
module Repl_hub = Nr_persist.Repl_hub
module Timed = Nr_sync.Backoff.Timed
module Chaos_repl = Nr_harness.Chaos_repl
module Durable = Nr_check.Durable

let exec_on store cmd = Store.execute store cmd

let update_cmds =
  [
    C.Set ("a", "1");
    C.Set ("b", "2");
    C.Incr "a";
    C.Zadd ("z", 5, 1);
    C.Zincrby ("z", 3, 1);
    C.Set ("c", "x");
    C.Del "b";
    C.Zadd ("z", 2, 2);
    C.Incr "a";
    C.Set ("d", "y");
  ]

let create_persister ?snapshot_every ?(policy = Aof.Always) ?background fs =
  match
    Persister.create fs ~policy ~now_ms:(fun () -> 0) ?snapshot_every
      ?background ()
  with
  | Ok pr -> pr
  | Error e -> Alcotest.failf "persister create: %s" e

(* --- jittered exponential backoff --- *)

let test_backoff_timed () =
  let b = Timed.create ~base_ms:50 ~max_ms:800 ~seed:42 () in
  Alcotest.(check int) "no failures yet" 0 (Timed.failures b);
  let envelope_at i = min 800 (50 * (1 lsl i)) in
  for i = 0 to 9 do
    let d = Timed.next_ms b in
    let env = envelope_at i in
    Alcotest.(check bool)
      (Printf.sprintf "delay %d in [env/2, env] for env %d (got %d)" i env d)
      true
      (d >= env / 2 && d <= env);
    Alcotest.(check int) "failure count tracks" (i + 1) (Timed.failures b);
    Alcotest.(check int) "last_ms" d (Timed.last_ms b)
  done;
  Timed.reset b;
  Alcotest.(check int) "reset clears consecutive" 0 (Timed.failures b);
  Alcotest.(check int) "lifetime count survives reset" 10 (Timed.total_failures b);
  let d = Timed.next_ms b in
  Alcotest.(check bool) "envelope restarted at base" true (d >= 25 && d <= 50);
  (* same seed, same sequence: the jitter stream is deterministic *)
  let b1 = Timed.create ~seed:7 () and b2 = Timed.create ~seed:7 () in
  for _ = 1 to 8 do
    Alcotest.(check int) "deterministic jitter" (Timed.next_ms b1)
      (Timed.next_ms b2)
  done

(* --- leader-side ack hub --- *)

let test_hub_watermarks () =
  let hub = Repl_hub.create () in
  Alcotest.(check int) "no followers" 0 (Repl_hub.followers hub);
  Repl_hub.ack hub ~id:"f1" ~seq:5;
  Repl_hub.ack hub ~id:"f2" ~seq:3;
  Alcotest.(check int) "two followers" 2 (Repl_hub.followers hub);
  Alcotest.(check int) "both cover 3" 2 (Repl_hub.acked hub ~seq:3);
  Alcotest.(check int) "one covers 5" 1 (Repl_hub.acked hub ~seq:5);
  Alcotest.(check int) "none cover 6" 0 (Repl_hub.acked hub ~seq:6);
  (* watermarks are monotone: a reordered stale ack never regresses *)
  Repl_hub.ack hub ~id:"f1" ~seq:2;
  Alcotest.(check int) "stale ack ignored" 1 (Repl_hub.acked hub ~seq:5);
  Repl_hub.ack hub ~id:"f2" ~seq:9;
  Alcotest.(check int) "advance applies" 2 (Repl_hub.acked hub ~seq:5);
  Repl_hub.forget hub ~id:"f1";
  Alcotest.(check int) "forget drops the watermark" 1 (Repl_hub.acked hub ~seq:1);
  Alcotest.(check int) "acks counted" 4 (Repl_hub.acks_received hub)

let test_hub_wait_virtual_clock () =
  let hub = Repl_hub.create () in
  let clock = ref 0 and sleeps = ref 0 in
  let now_ms () = !clock in
  let sleep_ms ms =
    incr sleeps;
    clock := !clock + ms;
    (* a follower acks while the client is parked in WAIT *)
    if !clock >= 10 then Repl_hub.ack hub ~id:"late" ~seq:7
  in
  Repl_hub.ack hub ~id:"early" ~seq:7;
  (* n satisfied without sleeping *)
  let got = Repl_hub.wait hub ~now_ms ~sleep_ms ~seq:7 ~n:1 ~timeout_ms:50 in
  Alcotest.(check int) "immediate" 1 got;
  Alcotest.(check int) "no sleep needed" 0 !sleeps;
  (* n = 2 becomes satisfiable mid-wait *)
  let got = Repl_hub.wait hub ~now_ms ~sleep_ms ~seq:7 ~n:2 ~timeout_ms:100 in
  Alcotest.(check int) "woke when the late ack landed" 2 got;
  Alcotest.(check bool) "slept at least once" true (!sleeps > 0);
  (* unsatisfiable n: the timeout degrades to the achieved count *)
  let t0 = !clock in
  let got = Repl_hub.wait hub ~now_ms ~sleep_ms ~seq:7 ~n:5 ~timeout_ms:40 in
  Alcotest.(check int) "graceful degradation" 2 got;
  Alcotest.(check bool) "respected the deadline" true (!clock >= t0 + 40);
  (* n <= 0 is an instant census *)
  let before = !sleeps in
  Alcotest.(check int) "n=0 instant" 2
    (Repl_hub.wait hub ~now_ms ~sleep_ms ~seq:7 ~n:0 ~timeout_ms:1000);
  Alcotest.(check int) "n=0 never sleeps" before !sleeps

(* --- strict apply: no regression for durable followers --- *)

let test_apply_strict_refuses_regression () =
  let regressing =
    C.Array [ C.Bulk "FULLRESYNC"; C.Int 5; C.Bulk "" ]
  in
  let store = Store.create () in
  (match
     Replication.apply ~strict:true ~exec:(exec_on store) ~offset:8 regressing
   with
  | Error e ->
      Alcotest.(check bool) "names the regression" true
        (String.length e >= 24 && String.sub e 0 24 = "replication: full resync")
  | Ok _ -> Alcotest.fail "strict apply accepted a regressing full resync");
  (* without strict (in-memory follower) the resync is accepted *)
  match Replication.apply ~exec:(exec_on store) ~offset:8 regressing with
  | Ok off -> Alcotest.(check int) "lenient offset" 5 off
  | Error e -> Alcotest.failf "lenient apply: %s" e

(* --- chained replication: a follower serves PSYNC off its own AOF --- *)

(* one PSYNC round of an AOF-keeping follower [p] against its parent
   persister, persisting at the parent's global coordinates *)
let feed_follower ~parent p =
  let offset = Persister.cursor p in
  match Persister.handle_sync parent (C.Psync offset) with
  | None -> Alcotest.fail "parent ignored PSYNC"
  | Some reply -> (
      match
        Replication.apply ~strict:true
          ~on_op:(fun op -> Persister.observe p [ op ])
          ~on_full:(fun ~upto ~dump -> Persister.reset_to p ~upto ~dump)
          ~exec:(fun _ -> C.Ok_reply)
          ~offset reply
      with
      | Ok off -> Alcotest.(check int) "offset = cursor" (Persister.cursor p) off
      | Error e -> Alcotest.failf "chained apply: %s" e)

let test_chained_follower_serves_psync () =
  let leader_sim = Sim_fs.create () in
  let leader, _ = create_persister ~snapshot_every:6 (Sim_fs.fs leader_sim) in
  let mid_sim = Sim_fs.create () in
  let mid, _ = create_persister (Sim_fs.fs mid_sim) in
  (* leader logs a first batch; the middle hop catches up *)
  List.iteri
    (fun i cmd -> if i < 5 then Persister.observe leader [ Some cmd ])
    update_cmds;
  feed_follower ~parent:leader mid;
  Alcotest.(check bool) "mid = leader" true
    (Persister.fingerprint mid = Persister.fingerprint leader);
  (* a grandchild syncs ENTIRELY off the middle hop's local AOF *)
  let tail = Store.create () in
  let tail_off = ref 0 in
  let pull_tail () =
    match Persister.handle_sync mid (C.Psync !tail_off) with
    | None -> Alcotest.fail "mid ignored PSYNC"
    | Some reply -> (
        match Replication.apply ~exec:(exec_on tail) ~offset:!tail_off reply with
        | Ok off -> tail_off := off
        | Error e -> Alcotest.failf "tail apply: %s" e)
  in
  pull_tail ();
  Alcotest.(check int) "tail offset" (Persister.cursor leader) !tail_off;
  Alcotest.(check bool) "grandchild = leader via the chain" true
    (Store.fingerprint tail = Persister.fingerprint leader);
  (* more writes; the leader compacts (snapshot_every 6), so the middle
     hop's next poll is a FULLRESYNC rebase — the chain re-converges and
     the grandchild still syncs off mid's AOF *)
  List.iter (fun cmd -> Persister.observe leader [ Some cmd ]) update_cmds;
  feed_follower ~parent:leader mid;
  pull_tail ();
  Alcotest.(check int) "tail offset after compaction"
    (Persister.cursor leader) !tail_off;
  Alcotest.(check bool) "chain re-converged" true
    (Persister.fingerprint mid = Persister.fingerprint leader
    && Store.fingerprint tail = Persister.fingerprint leader)

let test_chained_follower_recovers_at_global_coordinates () =
  let leader_sim = Sim_fs.create () in
  let leader, _ = create_persister (Sim_fs.fs leader_sim) in
  let f_sim = Sim_fs.create () in
  let f, _ = create_persister (Sim_fs.fs f_sim) in
  List.iter (fun cmd -> Persister.observe leader [ Some cmd ]) update_cmds;
  feed_follower ~parent:leader f;
  let cursor = Persister.cursor f in
  Alcotest.(check int) "global cursor" (Persister.cursor leader) cursor;
  (* crash the follower; its own AOF recovers the replicated prefix at
     the leader's coordinates (policy Always: everything was durable) *)
  (try Sim_fs.crash f_sim with Sim_fs.Crashed -> ());
  Sim_fs.reboot f_sim;
  let f2, _ = create_persister (Sim_fs.fs f_sim) in
  Alcotest.(check int) "recovered at global cursor" cursor (Persister.cursor f2);
  Alcotest.(check bool) "recovered state" true
    (Persister.fingerprint f2 = Persister.fingerprint leader)

(* --- aof rotate_from: compaction that keeps the live suffix --- *)

let test_rotate_from_keeps_tail () =
  let sim = Sim_fs.create () in
  let fs = Sim_fs.fs sim in
  let aof, _ =
    match Aof.open_ fs ~name:"aof" ~policy:Aof.Always ~now_ms:(fun () -> 0) ~start:0 with
    | Ok v -> v
    | Error e -> Alcotest.failf "open: %s" e
  in
  List.iteri (fun i _ -> Aof.append aof (Some (Printf.sprintf "op%d" i))) update_cmds;
  Alcotest.(check int) "next_seq" 10 (Aof.next_seq aof);
  Aof.rotate_from aof ~base:7;
  Alcotest.(check int) "base moved" 7 (Aof.base aof);
  Alcotest.(check int) "next_seq kept" 10 (Aof.next_seq aof);
  Alcotest.(check int) "rewrite is durable" 10 (Aof.durable_seq aof);
  (* the retained suffix survives a reopen, at its original positions *)
  Aof.append aof (Some "op10");
  Aof.close aof;
  let aof2, scanned =
    match Aof.open_ fs ~name:"aof" ~policy:Aof.Always ~now_ms:(fun () -> 0) ~start:0 with
    | Ok v -> v
    | Error e -> Alcotest.failf "reopen: %s" e
  in
  Alcotest.(check int) "reopened base" 7 (Aof.base aof2);
  Alcotest.(check (list (option string)))
    "positions 7..10 retained"
    [ Some "op7"; Some "op8"; Some "op9"; Some "op10" ]
    scanned.Aof.s_entries

(* --- background compaction seam --- *)

let test_background_compaction_seam () =
  let sim = Sim_fs.create () in
  let inner = Sim_fs.fs sim in
  (* Sim_fs-delayed snapshot write: the compaction's write_atomic stalls
     until the main thread releases it, proving writes commit while a
     slow compaction is in flight *)
  let gate = Mutex.create () in
  let slow_fs =
    {
      inner with
      Vfs.write_atomic =
        (fun name content ->
          if String.length name >= 8 && String.sub name 0 8 = "snapshot" then begin
            Mutex.lock gate;
            Mutex.unlock gate
          end;
          inner.Vfs.write_atomic name content);
    }
  in
  let p, _ = create_persister ~snapshot_every:4 ~background:true slow_fs in
  List.iteri
    (fun i cmd -> if i < 6 then Persister.observe p [ Some cmd ])
    update_cmds;
  Alcotest.(check bool) "due after the cadence" true (Persister.compaction_due p);
  (* hold the gate, start the slow compaction in a background thread *)
  Mutex.lock gate;
  let upto, dump = Persister.compaction_begin p in
  Alcotest.(check int) "cut at the cursor" 6 upto;
  Alcotest.(check bool) "one in flight" true (Persister.compacting p);
  Alcotest.(check bool) "not re-due while in flight" false
    (Persister.compaction_due p);
  let done_flag = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        Persister.compaction_write p ~upto ~dump;
        Atomic.set done_flag true)
      ()
  in
  Thread.delay 0.02;
  Alcotest.(check bool) "compaction still writing" false (Atomic.get done_flag);
  (* the seam: appends proceed while the snapshot write is stuck *)
  List.iteri
    (fun i cmd -> if i >= 6 then Persister.observe p [ Some cmd ])
    update_cmds;
  Alcotest.(check int) "writes landed during compaction" 10 (Persister.cursor p);
  Mutex.unlock gate;
  Thread.join th;
  Persister.compaction_finish p ~upto;
  Alcotest.(check int) "aof rebased at the cut" upto (Persister.aof_base p);
  Alcotest.(check int) "suffix preserved" 10 (Persister.cursor p);
  (* crash + recover: snapshot at the cut + retained suffix = full state *)
  (try Sim_fs.crash sim with Sim_fs.Crashed -> ());
  Sim_fs.reboot sim;
  let p2, r = create_persister inner in
  Alcotest.(check int) "recovered everything" 10 (Persister.cursor p2);
  Alcotest.(check (option int)) "recovered via the snapshot" (Some upto)
    r.Persister.snapshot_upto;
  let oracle = Store.create () in
  List.iter (fun cmd -> ignore (Store.execute oracle cmd)) update_cmds;
  Alcotest.(check bool) "recovered state = oracle" true
    (Persister.fingerprint p2 = Store.fingerprint oracle)

let test_background_compaction_crash_between_write_and_finish () =
  (* die after the snapshot is durable but before the AOF rewrite: the
     new snapshot covers a redundant AOF prefix; nothing is lost *)
  let sim = Sim_fs.create () in
  let fs = Sim_fs.fs sim in
  let p, _ = create_persister ~snapshot_every:4 ~background:true fs in
  List.iter (fun cmd -> Persister.observe p [ Some cmd ]) update_cmds;
  let upto, dump = Persister.compaction_begin p in
  Persister.compaction_write p ~upto ~dump;
  (* crash before compaction_finish *)
  (try Sim_fs.crash sim with Sim_fs.Crashed -> ());
  Sim_fs.reboot sim;
  let p2, _ = create_persister fs in
  Alcotest.(check int) "recovered full prefix" 10 (Persister.cursor p2);
  let oracle = Store.create () in
  List.iter (fun cmd -> ignore (Store.execute oracle cmd)) update_cmds;
  Alcotest.(check bool) "state intact" true
    (Persister.fingerprint p2 = Store.fingerprint oracle)

(* --- zero-overhead guard: aof without followers is byte-identical --- *)

let test_aof_without_followers_byte_identical () =
  (* the PR 7 shape: persister alone.  The PR 8 shape: persister + an ack
     hub that never hears an ack + WAIT queries.  The AOF bytes and
     fsync counts must not notice the difference. *)
  let run_shape ~with_hub =
    let sim = Sim_fs.create () in
    let fs = Sim_fs.fs sim in
    let p, _ = create_persister ~snapshot_every:4 ~policy:(Aof.Every_n 3) fs in
    let hub = if with_hub then Some (Repl_hub.create ()) else None in
    List.iter
      (fun cmd ->
        Persister.observe p [ Some cmd ];
        match hub with
        | Some h ->
            ignore
              (Repl_hub.wait h
                 ~now_ms:(fun () -> 0)
                 ~sleep_ms:(fun _ -> ())
                 ~seq:(Persister.cursor p) ~n:1 ~timeout_ms:0)
        | None -> ())
      update_cmds;
    let aof_bytes = Option.value (fs.Vfs.read_file "aof") ~default:"" in
    let snap_bytes = Option.value (fs.Vfs.read_file "snapshot") ~default:"" in
    (aof_bytes, snap_bytes, Persister.fsyncs p, Persister.cursor p)
  in
  let a1, s1, f1, c1 = run_shape ~with_hub:false in
  let a2, s2, f2, c2 = run_shape ~with_hub:true in
  Alcotest.(check string) "aof bytes identical" a1 a2;
  Alcotest.(check string) "snapshot bytes identical" s1 s2;
  Alcotest.(check int) "fsync count identical" f1 f2;
  Alcotest.(check int) "cursor identical" c1 c2

(* --- WAIT/REPLACK over real TCP --- *)

(* an in-process leader shaped exactly like the server binary's persist
   mode: mutex-locked exec+tap, SYNC/PSYNC + WAIT/REPLACK specials *)
let with_tcp_leader f =
  let sim = Sim_fs.create () in
  let fs = Sim_fs.fs sim in
  let p, _ = create_persister ~policy:Aof.Always fs in
  let store = Store.create () in
  let hub = Repl_hub.create () in
  let m = Mutex.create () in
  let locked g =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) g
  in
  let exec cmd =
    locked (fun () ->
        let r = Store.execute store cmd in
        if not (C.is_read_only cmd) then Persister.observe p [ Some cmd ];
        r)
  in
  let special cmd =
    match cmd with
    | C.Sync | C.Psync _ -> locked (fun () -> Persister.handle_sync p cmd)
    | C.Wait (n, timeout_ms) ->
        let target = locked (fun () -> Persister.cursor p) in
        Some (C.Int (Repl_hub.wait hub ~seq:target ~n ~timeout_ms))
    | C.Replack (id, seq) ->
        Repl_hub.ack hub ~id ~seq;
        Some C.Ok_reply
    | _ -> None
  in
  let server = Nr_kvstore.Server.create ~special ~port:0 ~workers:2 exec in
  let port = Nr_kvstore.Server.port server in
  let accept_domain = Domain.spawn (fun () -> Nr_kvstore.Server.serve server) in
  Fun.protect
    ~finally:(fun () ->
      Nr_kvstore.Server.shutdown server;
      Domain.join accept_domain)
    (fun () ->
      f ~port ~exec
        ~cursor:(fun () -> locked (fun () -> Persister.cursor p))
        ~fingerprint:(fun () -> locked (fun () -> Persister.fingerprint p)))

let test_tcp_wait_and_ack () =
  with_tcp_leader (fun ~port ~exec ~cursor ~fingerprint ->
      List.iter
        (fun cmd -> ignore (exec cmd))
        (List.filteri (fun i _ -> i < 6) update_cmds);
      let session =
        Replication.make_session ~connect_timeout_ms:1000 ~read_timeout_ms:2000
          ~endpoints:[ { Replication.host = "127.0.0.1"; port } ]
          ~offset:0 ()
      in
      (* a client's WAIT with no follower times out to 0, not an error *)
      let client =
        match Replication.connect ~host:"127.0.0.1" ~port () with
        | Ok c -> c
        | Error e -> Alcotest.failf "client connect: %s" e
      in
      let wait n timeout =
        match Replication.request client (C.Wait (n, timeout)) with
        | Ok (C.Int k) -> k
        | Ok r -> Alcotest.failf "WAIT reply: %a" C.pp_reply r
        | Error e -> Alcotest.failf "WAIT: %s" e
      in
      Alcotest.(check int) "WAIT with nobody acked degrades to 0" 0 (wait 1 60);
      (* the follower catches up and acks its durable watermark *)
      let follower = Store.create () in
      (match Replication.step session ~exec:(exec_on follower) with
      | Replication.Applied off ->
          Alcotest.(check int) "caught up" (cursor ()) off
      | Replication.Retry_after (_, e) -> Alcotest.failf "step: %s" e);
      (match
         Replication.ack session ~id:"f1" ~seq:(Replication.offset session)
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "ack: %s" e);
      Alcotest.(check int) "WAIT 1 satisfied" 1 (wait 1 2000);
      Alcotest.(check int) "WAIT 2 degrades to 1 at timeout" 1 (wait 2 80);
      (* new write: the follower's old ack no longer covers the target *)
      ignore (exec (C.Set ("late", "w")));
      Alcotest.(check int) "stale ack does not cover a later write" 0 (wait 1 60);
      (match Replication.step session ~exec:(exec_on follower) with
      | Replication.Applied _ -> ()
      | Replication.Retry_after (_, e) -> Alcotest.failf "step2: %s" e);
      (match
         Replication.ack session ~id:"f1" ~seq:(Replication.offset session)
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "ack2: %s" e);
      Alcotest.(check int) "fresh ack satisfies WAIT again" 1 (wait 1 2000);
      Alcotest.(check bool) "follower converged" true
        (Store.fingerprint follower = fingerprint ());
      Replication.close client)

let test_tcp_session_backoff_failover () =
  (* a dead endpoint first: the session must back off, rotate, and find
     the live leader on the next step without being rebuilt *)
  let dead_port =
    (* grab a port that refuses connections: bind, read the number, close *)
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false
    in
    Unix.close fd;
    port
  in
  with_tcp_leader (fun ~port ~exec ~cursor ~fingerprint ->
      List.iter
        (fun cmd -> ignore (exec cmd))
        (List.filteri (fun i _ -> i < 4) update_cmds);
      let backoff = Timed.create ~base_ms:10 ~max_ms:80 ~seed:3 () in
      let session =
        Replication.make_session ~backoff ~connect_timeout_ms:500
          ~read_timeout_ms:2000
          ~endpoints:
            [
              { Replication.host = "127.0.0.1"; port = dead_port };
              { Replication.host = "127.0.0.1"; port };
            ]
          ~offset:0 ()
      in
      let follower = Store.create () in
      (match Replication.step session ~exec:(exec_on follower) with
      | Replication.Retry_after (delay, _) ->
          Alcotest.(check bool) "jittered backoff delay" true
            (delay >= 5 && delay <= 10);
          Alcotest.(check int) "one consecutive failure" 1
            (Replication.consecutive_failures session)
      | Replication.Applied _ -> Alcotest.fail "dead endpoint should fail");
      (match Replication.step session ~exec:(exec_on follower) with
      | Replication.Applied off ->
          Alcotest.(check int) "re-resolved to the live leader" (cursor ())
            off;
          Alcotest.(check int) "success resets the failure streak" 0
            (Replication.consecutive_failures session);
          Alcotest.(check int) "lifetime failure count kept" 1
            (Replication.total_failures session)
      | Replication.Retry_after (_, e) -> Alcotest.failf "live step: %s" e);
      let ep = Replication.leader session in
      Alcotest.(check int) "leader address re-resolved" port ep.Replication.port;
      Alcotest.(check bool) "converged after failover" true
        (Store.fingerprint follower = fingerprint ()))

(* --- the real server binary: failover promotion over TCP --- *)

(* `dune runtest` runs from _build/default/test; `dune exec` from the
   workspace root — probe both *)
let kv_server_exe =
  let candidates =
    [
      Filename.concat (Filename.concat ".." "bin") "kv_server.exe";
      "_build/default/bin/kv_server.exe";
      "bin/kv_server.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let with_temp_dir f =
  let dir = Filename.temp_file "nr_repl_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun file -> Sys.remove (Filename.concat dir file))
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

type proc = { pid : int; port : int; out : in_channel }

(* the banner is "kv-server listening on 127.0.0.1:PORT (...)" *)
let port_of_banner line =
  let prefix = "kv-server listening on 127.0.0.1:" in
  let plen = String.length prefix in
  if String.length line > plen && String.sub line 0 plen = prefix then
    let digits = Buffer.create 5 in
    (try
       String.iter
         (fun c ->
           if c >= '0' && c <= '9' then Buffer.add_char digits c
           else raise Exit)
         (String.sub line plen (String.length line - plen))
     with Exit -> ());
    int_of_string_opt (Buffer.contents digits)
  else None

(* spawn kv_server.exe on an anonymous port and parse the bound port off
   its startup banner *)
let spawn_server args =
  let r, w = Unix.pipe () in
  let pid =
    Unix.create_process kv_server_exe
      (Array.of_list (kv_server_exe :: "--port" :: "0" :: "--workers" :: "2" :: args))
      Unix.stdin w Unix.stderr
  in
  Unix.close w;
  let out = Unix.in_channel_of_descr r in
  let rec find_port () =
    match input_line out with
    | line -> (
        match port_of_banner line with Some p -> Some p | None -> find_port ())
    | exception End_of_file -> None
  in
  match find_port () with
  | Some port -> { pid; port; out }
  | None ->
      ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0));
      Alcotest.failf "kv-server exited before announcing a port"

let kill_server proc =
  (try Unix.kill proc.pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (try Unix.waitpid [] proc.pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0));
  try close_in proc.out with Sys_error _ -> ()

(* minimal RESP client over the replication transport's request helper *)
let client_conn port =
  match
    Replication.connect ~connect_timeout_ms:2000 ~read_timeout_ms:5000
      ~host:"127.0.0.1" ~port ()
  with
  | Ok c -> c
  | Error e -> Alcotest.failf "client connect :%d: %s" port e

let retry_until ?(deadline_s = 15.) ~what f =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec go () =
    match f () with
    | Some v -> v
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "timed out waiting for %s" what
        else begin
          Thread.delay 0.05;
          go ()
        end
  in
  go ()

let test_kv_server_failover_promotion () =
  with_temp_dir (fun leader_dir ->
      with_temp_dir (fun follower_dir ->
          let leader =
            spawn_server [ "--aof"; leader_dir; "--fsync"; "always" ]
          in
          let follower = ref None in
          Fun.protect
            ~finally:(fun () ->
              kill_server leader;
              match !follower with Some f -> kill_server f | None -> ())
            (fun () ->
              let f =
                spawn_server
                  [
                    "--aof"; follower_dir; "--fsync"; "always";
                    "--follower-of"; Printf.sprintf "127.0.0.1:%d" leader.port;
                    "--failover-after"; "3";
                    "--poll-interval-ms"; "10";
                    "--connect-timeout-ms"; "300";
                    "--read-timeout-ms"; "1000";
                  ]
              in
              follower := Some f;
              (* writes + WAIT on the live leader *)
              let lc = client_conn leader.port in
              let req conn cmd =
                match Replication.request conn cmd with
                | Ok r -> r
                | Error e -> Alcotest.failf "request %a: %s" C.pp cmd e
              in
              ignore (req lc (C.Set ("alpha", "1")));
              ignore (req lc (C.Set ("beta", "2")));
              ignore (req lc (C.Incr "alpha"));
              (* semi-sync: block until the follower's ack covers them *)
              (match req lc (C.Wait (1, 10_000)) with
              | C.Int n when n >= 1 -> ()
              | r -> Alcotest.failf "WAIT: %a" C.pp_reply r);
              (* the follower rejects writes, naming the leader *)
              let fc = client_conn f.port in
              (match req fc (C.Set ("x", "y")) with
              | C.Err e ->
                  Alcotest.(check string) "READONLY carries the leader address"
                    (Printf.sprintf "READONLY leader 127.0.0.1:%d" leader.port)
                    e
              | r -> Alcotest.failf "follower accepted a write: %a" C.pp_reply r);
              Replication.close fc;
              (* kill the leader; the follower must promote itself *)
              kill_server leader;
              Replication.close lc;
              let fc2 = client_conn f.port in
              retry_until ~what:"follower promotion" (fun () ->
                  match Replication.request fc2 (C.Set ("gamma", "3")) with
                  | Ok C.Ok_reply -> Some ()
                  | Ok (C.Err _) -> None
                  | Ok r -> Alcotest.failf "promoted write: %a" C.pp_reply r
                  | Error e -> Alcotest.failf "promoted write: %s" e);
              (* the promoted node retained the replicated writes *)
              (match req fc2 (C.Get "alpha") with
              | C.Bulk "2" -> ()
              | r -> Alcotest.failf "alpha after promotion: %a" C.pp_reply r);
              (* and serves PSYNC to a late rejoiner off its own AOF *)
              let rejoiner = Store.create () in
              let rc = client_conn f.port in
              (match
                 Replication.poll rc ~exec:(exec_on rejoiner) ~offset:0
               with
              | Ok off -> Alcotest.(check bool) "rejoiner offset > 0" true (off > 0)
              | Error e -> Alcotest.failf "rejoiner poll: %s" e);
              (match Store.execute rejoiner (C.Get "alpha") with
              | C.Bulk "2" -> ()
              | r -> Alcotest.failf "rejoiner alpha: %a" C.pp_reply r);
              (match Store.execute rejoiner (C.Get "gamma") with
              | C.Bulk "3" -> ()
              | r -> Alcotest.failf "rejoiner gamma: %a" C.pp_reply r);
              Replication.close rc;
              Replication.close fc2)))

(* --- chaos sweep: the WAIT guarantee under seeded kill schedules --- *)

let check_outcome ?(require_converged = true) params (o : Chaos_repl.outcome) =
  (* WAIT half: every satisfied WAIT still has its promised holders *)
  let violations =
    Durable.check_wait ~waits:o.Chaos_repl.waits
      ~durable_prefixes:(Chaos_repl.follower_prefixes o)
  in
  (match violations with
  | [] -> ()
  | v :: _ ->
      QCheck.Test.fail_reportf "seed %d: %a" params.Chaos_repl.seed
        Durable.pp_wait_violation v);
  (* state half: every recovered process is an oracle prefix covering its
     own durable watermark *)
  List.iter
    (fun (id, recovered_seq, recovered_dump) ->
      let acked = List.assoc id o.Chaos_repl.acked_at_crash in
      let verdict =
        Durable.check ~logged:o.Chaos_repl.logged ~acked ~recovered_seq
          ~recovered_dump
      in
      if not (Durable.is_durable verdict) then
        QCheck.Test.fail_reportf "seed %d node %d: %a" params.Chaos_repl.seed id
          Durable.pp verdict)
    o.Chaos_repl.recovered;
  (* convergence: after recovery + promotion everyone agrees *)
  if require_converged then begin
    if not o.Chaos_repl.converged then
      QCheck.Test.fail_reportf "seed %d: cluster did not converge"
        params.Chaos_repl.seed;
    match o.Chaos_repl.fingerprints with
    | [] -> ()
    | (_, fp0) :: rest ->
        List.iter
          (fun (id, fp) ->
            if fp <> fp0 then
              QCheck.Test.fail_reportf
                "seed %d: node %d fingerprint diverged after catch-up"
                params.Chaos_repl.seed id)
          rest
  end

let chaos_params_gen =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    let* followers = int_range 1 4 in
    let* chain = bool in
    let* events = int_range 60 200 in
    let* policy = oneofl [ Aof.Always; Aof.Every_n 4; Aof.Never ] in
    let* snapshot_every = oneofl [ None; Some 8; Some 20 ] in
    let* kill_io = bool in
    return
      {
        Chaos_repl.seed;
        followers;
        chain;
        events;
        policy;
        snapshot_every;
        kill_io;
      })

let print_chaos_params p =
  Printf.sprintf "seed %d, %d followers, %s, %d events, %s, snap %s, kill_io %b"
    p.Chaos_repl.seed p.Chaos_repl.followers
    (if p.Chaos_repl.chain then "chain" else "star")
    p.Chaos_repl.events
    (Format.asprintf "%a" Aof.pp_policy p.Chaos_repl.policy)
    (match p.Chaos_repl.snapshot_every with
    | None -> "never"
    | Some n -> string_of_int n)
    p.Chaos_repl.kill_io

let chaos_repl_sweep =
  QCheck.Test.make ~count:220
    ~name:"chaos-repl: WAIT guarantee + oracle prefixes + convergence"
    (QCheck.make chaos_params_gen ~print:print_chaos_params)
    (fun params ->
      check_outcome params (Chaos_repl.run params);
      true)

let test_chaos_repl_golden () =
  (* pinned seeds as fast regressions; jointly they must actually have
     faulted and made WAIT promises, or the sweep proves nothing *)
  let totals = ref (0, 0, 0) in
  List.iter
    (fun (seed, chain, policy) ->
      let params =
        {
          Chaos_repl.default_params with
          seed;
          chain;
          policy;
          followers = 3;
          events = 160;
          snapshot_every = Some 10;
        }
      in
      let o = Chaos_repl.run params in
      check_outcome params o;
      let k, w, f = !totals in
      totals :=
        ( k + o.Chaos_repl.kills,
          w + List.length o.Chaos_repl.waits,
          f + o.Chaos_repl.full_resyncs ))
    [
      (0xC0FFEE, false, Aof.Always);
      (0xB0BA, true, Aof.Always);
      (17, true, Aof.Every_n 4);
      (424242, false, Aof.Every_n 4);
    ];
  let kills, waits, fulls = !totals in
  Alcotest.(check bool) "the goldens actually killed processes" true (kills > 0);
  Alcotest.(check bool) "the goldens actually made WAIT promises" true
    (waits > 0);
  Alcotest.(check bool) "the goldens exercised full resyncs" true (fulls >= 0)

let suite =
  [
    Alcotest.test_case "backoff.timed jitter + envelope" `Quick
      test_backoff_timed;
    Alcotest.test_case "hub watermarks monotone" `Quick test_hub_watermarks;
    Alcotest.test_case "hub wait: block, degrade, census" `Quick
      test_hub_wait_virtual_clock;
    Alcotest.test_case "strict apply refuses regression" `Quick
      test_apply_strict_refuses_regression;
    Alcotest.test_case "chained follower serves psync" `Quick
      test_chained_follower_serves_psync;
    Alcotest.test_case "chained follower global coordinates" `Quick
      test_chained_follower_recovers_at_global_coordinates;
    Alcotest.test_case "aof rotate_from keeps tail" `Quick
      test_rotate_from_keeps_tail;
    Alcotest.test_case "background compaction seam" `Quick
      test_background_compaction_seam;
    Alcotest.test_case "compaction crash between write and finish" `Quick
      test_background_compaction_crash_between_write_and_finish;
    Alcotest.test_case "aof without followers byte-identical" `Quick
      test_aof_without_followers_byte_identical;
    Alcotest.test_case "tcp wait + replack" `Slow test_tcp_wait_and_ack;
    Alcotest.test_case "tcp session backoff + failover re-resolution" `Slow
      test_tcp_session_backoff_failover;
    Alcotest.test_case "kv-server failover promotion + late rejoiner" `Slow
      test_kv_server_failover_promotion;
  ]

let chaos_suite =
  [
    Alcotest.test_case "chaos-repl golden seeds" `Quick test_chaos_repl_golden;
    QCheck_alcotest.to_alcotest chaos_repl_sweep;
  ]

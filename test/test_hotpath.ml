(* Hot-path properties: the flat shared log under random batched
   append/replay/recycle schedules, copy-based replica construction, and
   end-to-end determinism of a seeded sweep point. *)

module S = Nr_sim.Sched
module T = Nr_sim.Topology

(* --- the flat log under random schedules --------------------------- *)

(* A script interleaves batched appends from two nodes with partial
   consumption; small logs force many laps through the generation-stamp
   recycling protocol, and full logs exercise the [on_full] helping path. *)
type step = Append of int * int  (** node, batch size *)
          | Consume of int * int  (** node, window *)

let script_gen =
  QCheck.Gen.(
    let* size = oneofl [ 8; 16; 64 ] in
    let* steps =
      list_size (int_range 20 120)
        (oneof
           [
             (let* node = int_bound 1 in
              let* n = int_range 1 4 in
              return (Append (node, n)));
             (let* node = int_bound 1 in
              let* w = int_range 1 8 in
              return (Consume (node, w)));
           ])
    in
    return (size, steps))

let print_script (size, steps) =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "size=%d:" size);
  List.iter
    (function
      | Append (n, k) -> Buffer.add_string b (Printf.sprintf " A%d/%d" n k)
      | Consume (n, w) -> Buffer.add_string b (Printf.sprintf " C%d/%d" n w))
    steps;
  Buffer.contents b

let log_replay_agrees =
  QCheck.Test.make ~count:60
    ~name:"log: every node replays the append order, across laps"
    (QCheck.make script_gen ~print:print_script)
    (fun (size, steps) ->
      let sched = S.create T.tiny in
      let module R = (val Nr_runtime.Runtime_sim.make sched) in
      let module Log = Nr_core.Log.Make (R) in
      let appended = ref [] in
      let observed = [| ref []; ref [] |] in
      let ok = ref true in
      S.spawn sched ~tid:0 (fun () ->
          let log = Log.create ~size ~nodes:2 () in
          let bufs = [| Log.batch (); Log.batch () |] in
          let tails = [| 0; 0 |] in
          let next = ref 0 in
          (* consume up to [w] filled entries into [node]'s observed list *)
          let consume node w =
            let lt = tails.(node) in
            let n = min w (Log.tail log - lt) in
            if n > 0 then begin
              let k = Log.read_filled log bufs.(node) lt n in
              for j = 0 to k - 1 do
                observed.(node) := Log.op_at log (lt + j) :: !(observed.(node))
              done;
              tails.(node) <- lt + k;
              Log.set_local_tail log node (lt + k)
            end
          in
          let drain node = consume node max_int in
          let on_full () =
            (* recycling needs every node past the oldest lap: help both *)
            drain 0;
            drain 1
          in
          List.iter
            (function
              | Append (node, n) ->
                  let ops = Array.make n None and slots = Array.make n 0 in
                  for j = 0 to n - 1 do
                    let s = Printf.sprintf "%d-%d" node (!next + j) in
                    ops.(j) <- Some s;
                    slots.(j) <- j;
                    appended := s :: !appended
                  done;
                  next := !next + n;
                  ignore (Log.append_batch log ~ops ~slots ~n ~origin_node:node ~on_full)
              | Consume (node, w) -> consume node w)
            steps;
          drain 0;
          drain 1;
          ok :=
            tails.(0) = Log.tail log
            && tails.(1) = Log.tail log);
      S.run sched;
      let order l = List.rev !l in
      !ok
      && order observed.(0) = order appended
      && order observed.(1) = order appended)

(* --- replica construction by copy ---------------------------------- *)

module Sl = Nr_seqds.Skiplist.Make (Nr_seqds.Ordered.Int)
module Ph = Nr_seqds.Pairing_heap.Make (Nr_seqds.Ordered.Int)

let pq_ops_gen =
  QCheck.Gen.(
    pair
      (list_size (int_range 0 80) (int_bound 200))
      (list_size (int_range 0 80) (oneof [ map (fun k -> `I k) (int_bound 200); return `R ])))

let print_pq_ops (init, ops) =
  Printf.sprintf "init=[%s] ops=[%s]"
    (String.concat ";" (List.map string_of_int init))
    (String.concat ";"
       (List.map (function `I k -> Printf.sprintf "i%d" k | `R -> "r") ops))

(* A copy must behave exactly like its original under any later op
   sequence — including tower shapes, which depend on the copied PRNG. *)
let skiplist_copy_equiv =
  QCheck.Test.make ~count:200 ~name:"skiplist copy: identical future behaviour"
    (QCheck.make pq_ops_gen ~print:print_pq_ops)
    (fun (init, ops) ->
      let a = Sl.create ~seed:0x51C1 () in
      List.iter (fun k -> ignore (Sl.insert a k k)) init;
      let b = Sl.copy a in
      Sl.to_list a = Sl.to_list b
      && Result.is_ok (Sl.validate b)
      && List.for_all
           (function
             | `I k -> Sl.insert a k k = Sl.insert b k k
             | `R -> Sl.remove_min a = Sl.remove_min b)
           ops
      && Sl.to_list a = Sl.to_list b)

let pairing_copy_equiv =
  QCheck.Test.make ~count:200
    ~name:"pairing heap copy: identical future behaviour"
    (QCheck.make pq_ops_gen ~print:print_pq_ops)
    (fun (init, ops) ->
      let a = Ph.create () in
      List.iter (fun k -> Ph.insert a k k) init;
      let b = Ph.copy a in
      List.for_all
        (function
          | `I k ->
              Ph.insert a k k;
              Ph.insert b k k;
              true
          | `R -> Ph.remove_min a = Ph.remove_min b)
        ops
      && Ph.to_sorted_list a = Ph.to_sorted_list b
      && (* draining compares the exact meld order, not just the key sets *)
      List.init (Ph.length a) (fun _ -> Ph.remove_min a)
      = List.init (Ph.length b) (fun _ -> Ph.remove_min b))

(* --- end-to-end determinism ---------------------------------------- *)

open Nr_harness

let run_point ?faults () =
  let params =
    {
      Params.topo = T.intel;
      threads = [ 14 ];
      warmup_us = 2.0;
      measure_us = 12.0;
      population = 512;
      seed = 0xA5A5;
      latency = false;
    }
  in
  Driver.run_sim ?faults ~topo:params.Params.topo ~threads:14
    ~warmup_us:params.Params.warmup_us ~measure_us:params.Params.measure_us
    (Exp_pq.Sl_exp.setup_black_box params Method.NR ~update_pct:10 ~e:0
       ~threads:14)

let check_points_identical msg (a : Driver.result) (b : Driver.result) =
  Alcotest.(check int) (msg ^ ": total ops") a.Driver.total_ops b.Driver.total_ops;
  Alcotest.(check int)
    (msg ^ ": remote transfers")
    a.Driver.remote_transfers b.Driver.remote_transfers;
  Alcotest.(check bool)
    (msg ^ ": throughput bit-identical")
    true
    (Int64.bits_of_float a.Driver.ops_per_us
    = Int64.bits_of_float b.Driver.ops_per_us)

let test_sweep_point_deterministic () =
  check_points_identical "rerun" (run_point ()) (run_point ())

(* Zero-overhead guard: installing the fault-injection hooks with a plan
   that never fires must not move a single virtual-time charge — the
   fig5a-style sweep point stays byte-identical.  (Legacy configs with no
   plan at all are covered by the rerun test above.) *)
let test_fault_hooks_transparent () =
  check_points_identical "armed-but-silent plan"
    (run_point ())
    (run_point ~faults:Nr_sim.Fault_plan.none ())

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ log_replay_agrees; skiplist_copy_equiv; pairing_copy_equiv ]
  @ [
      Alcotest.test_case "seeded sweep point is deterministic" `Quick
        test_sweep_point_deterministic;
      Alcotest.test_case "fault hooks are timing-transparent" `Quick
        test_fault_hooks_transparent;
    ]

(* Durability subsystem tests: frame codec, AOF group fsync, snapshots,
   crash recovery against the sequential oracle, the log-tap cursor, and
   log-shipping replication.

   The crash tests run over Sim_fs — the in-memory file system with an
   explicit durable/pending split and Fault_plan-driven kill points — so
   every "power failure" is a deterministic, replayable schedule. *)

open Nr_persist
module C = Nr_kvstore.Command
module Store = Nr_kvstore.Store
module S = Nr_sim.Sched
module T = Nr_sim.Topology

let zero_ms () = 0

(* --- crc32 --- *)

let test_crc32_kat () =
  (* the standard IEEE 802.3 check value *)
  Alcotest.(check int) "check string" 0xCBF43926 (Crc32.digest "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.digest "");
  let s = "the quick brown fox" in
  Alcotest.(check int)
    "incremental = one-shot"
    (Crc32.digest s)
    (Crc32.update (Crc32.update 0 s ~pos:0 ~len:9) s ~pos:9
       ~len:(String.length s - 9))

(* --- frame codec --- *)

let test_frame_roundtrip () =
  let payload = "SET k \x00\xff\r\nv" in
  let b = Frame.encode ~kind:Frame.Op ~seq:42 payload in
  (match Frame.decode b ~pos:0 with
  | Frame.Entry { kind = Frame.Op; seq = 42; payload = p; next } ->
      Alcotest.(check string) "payload" payload p;
      Alcotest.(check int) "next" (String.length b) next
  | _ -> Alcotest.fail "decode");
  (* every strict prefix is torn, never a bogus entry *)
  for cut = 1 to String.length b - 1 do
    match Frame.decode (String.sub b 0 cut) ~pos:0 with
    | Frame.Torn -> ()
    | Frame.End -> Alcotest.failf "prefix %d decoded as end" cut
    | Frame.Entry _ -> Alcotest.failf "prefix %d decoded as entry" cut
  done;
  (* flipping any byte fails the CRC (or the magic/kind checks) *)
  List.iter
    (fun i ->
      let m = Bytes.of_string b in
      Bytes.set m i (Char.chr (Char.code (Bytes.get m i) lxor 0x40));
      match Frame.decode (Bytes.to_string m) ~pos:0 with
      | Frame.Torn -> ()
      | _ -> Alcotest.failf "corruption at byte %d not caught" i)
    [ 0; 1; 2; 11; 14; 18; String.length b - 1 ]

let frame_qcheck =
  QCheck.Test.make ~count:200 ~name:"frame encode/decode roundtrip"
    QCheck.(pair (string_of_size Gen.(int_bound 200)) (int_bound 1_000_000))
    (fun (payload, seq) ->
      let b = Frame.encode ~kind:Frame.Op ~seq payload in
      match Frame.decode b ~pos:0 with
      | Frame.Entry { kind = _; seq = seq'; payload = payload'; next } ->
          payload' = payload && seq' = seq && next = String.length b
      | _ -> false)

let test_frame_scan_torn_golden () =
  (* hand-built torn tail: two intact frames then half of a third *)
  let f1 = Frame.encode ~kind:Frame.Op ~seq:0 "a" in
  let f2 = Frame.encode ~kind:Frame.Noop ~seq:1 "" in
  let f3 = Frame.encode ~kind:Frame.Op ~seq:2 "ccc" in
  let torn_file = f1 ^ f2 ^ String.sub f3 0 (String.length f3 - 2) in
  let sc = Frame.scan torn_file in
  Alcotest.(check bool) "torn" true sc.Frame.torn;
  Alcotest.(check int) "two intact frames" 2 (List.length sc.Frame.frames);
  Alcotest.(check int)
    "valid prefix length"
    (String.length (f1 ^ f2))
    sc.Frame.valid_len;
  let clean = Frame.scan (f1 ^ f2 ^ f3) in
  Alcotest.(check bool) "clean file not torn" false clean.Frame.torn;
  Alcotest.(check int) "three frames" 3 (List.length clean.Frame.frames)

(* --- sim_fs durability model --- *)

let test_sim_fs_crash_keeps_durable () =
  let sim = Sim_fs.create () in
  let fs = Sim_fs.fs sim in
  let f = fs.Vfs.open_append "f" in
  f.Vfs.append "synced";
  f.Vfs.fsync ();
  f.Vfs.append "pending";
  (* process view sees everything... *)
  Alcotest.(check (option string)) "process view" (Some "syncedpending")
    (fs.Vfs.read_file "f");
  (try Sim_fs.crash sim with Sim_fs.Crashed -> ());
  Sim_fs.reboot sim;
  (* ...the crash view keeps the synced bytes plus a prefix of the rest *)
  match fs.Vfs.read_file "f" with
  | Some s ->
      Alcotest.(check bool) "durable prefix survives" true
        (String.length s >= 6 && String.sub s 0 6 = "synced");
      Alcotest.(check bool) "nothing beyond what was written" true
        (s = String.sub "syncedpending" 0 (String.length s))
  | None -> Alcotest.fail "file vanished"

(* --- aof --- *)

let fresh_aof ?(policy = Aof.Never) ?now_ms () =
  let sim = Sim_fs.create () in
  let fs = Sim_fs.fs sim in
  match
    Aof.open_ fs ~name:"aof" ~policy
      ~now_ms:(Option.value now_ms ~default:zero_ms)
      ~start:0
  with
  | Ok (a, _) -> (sim, fs, a)
  | Error e -> Alcotest.failf "open: %s" e

let test_aof_append_reopen () =
  let _, fs, a = fresh_aof () in
  Aof.append a (Some "one");
  Aof.append a None;
  Aof.append a (Some "three");
  Aof.sync a;
  Aof.close a;
  match Aof.open_ fs ~name:"aof" ~policy:Aof.Never ~now_ms:zero_ms ~start:0 with
  | Ok (a2, sc) ->
      Alcotest.(check int) "next_seq" 3 (Aof.next_seq a2);
      Alcotest.(check bool) "not torn" false sc.Aof.s_torn;
      Alcotest.(check (list (option string)))
        "entries"
        [ Some "one"; None; Some "three" ]
        sc.Aof.s_entries
  | Error e -> Alcotest.failf "reopen: %s" e

let test_aof_fsync_policies () =
  (* always: every append acked durable *)
  let _, _, a = fresh_aof ~policy:Aof.Always () in
  Aof.append a (Some "x");
  Alcotest.(check int) "always durable" 1 (Aof.durable_seq a);
  (* every-n: the watermark advances in batches *)
  let _, _, b = fresh_aof ~policy:(Aof.Every_n 3) () in
  Aof.append b (Some "1");
  Aof.append b (Some "2");
  Alcotest.(check int) "below batch" 0 (Aof.durable_seq b);
  Aof.append b (Some "3");
  Alcotest.(check int) "batch flushed" 3 (Aof.durable_seq b);
  Alcotest.(check int) "one fsync" 1 (Aof.fsyncs b);
  (* every-ms: injected clock decides *)
  let clock = ref 0 in
  let _, _, c = fresh_aof ~policy:(Aof.Every_ms 10) ~now_ms:(fun () -> !clock) () in
  Aof.append c (Some "1");
  Alcotest.(check int) "clock still" 0 (Aof.durable_seq c);
  clock := 11;
  Aof.append c (Some "2");
  Alcotest.(check int) "clock expired" 2 (Aof.durable_seq c);
  (* never: only explicit sync *)
  let _, _, d = fresh_aof ~policy:Aof.Never () in
  Aof.append d (Some "1");
  Alcotest.(check int) "never" 0 (Aof.durable_seq d);
  Aof.sync d;
  Alcotest.(check int) "explicit" 1 (Aof.durable_seq d)

let test_aof_torn_tail_truncated_before_append () =
  (* crash mid-append leaves a torn tail; reopening must rewrite the file
     so the tear never corrupts later appends *)
  let plan = { Nr_sim.Fault_plan.none with seed = 7; kills_at = [ (0, 3) ] } in
  let sim = Sim_fs.create ~plan () in
  let fs = Sim_fs.fs sim in
  (match Aof.open_ fs ~name:"aof" ~policy:Aof.Never ~now_ms:zero_ms ~start:0 with
  | Ok (a, _) -> (
      try
        Aof.append a (Some "aaaa");
        Aof.append a (Some "bbbb");
        Alcotest.fail "second append should crash"
      with Sim_fs.Crashed -> ())
  | Error e -> Alcotest.failf "open: %s" e);
  Sim_fs.reboot sim;
  match Aof.open_ fs ~name:"aof" ~policy:Aof.Never ~now_ms:zero_ms ~start:0 with
  | Ok (a2, sc) ->
      let survivors = List.length sc.Aof.s_entries in
      Alcotest.(check bool) "at most both appends" true (survivors <= 2);
      (* appending after recovery must yield a cleanly scannable file *)
      Aof.append a2 (Some "cccc");
      Aof.sync a2;
      (match fs.Vfs.read_file "aof" with
      | Some bytes -> (
          match Aof.scan_bytes bytes with
          | Ok sc2 ->
              Alcotest.(check bool) "clean after recovery append" false
                sc2.Aof.s_torn;
              Alcotest.(check int)
                "recovered + new entry" (survivors + 1)
                (List.length sc2.Aof.s_entries)
          | Error _ -> Alcotest.fail "rescan failed")
      | None -> Alcotest.fail "aof missing")
  | Error e -> Alcotest.failf "reopen: %s" e

(* --- snapshot --- *)

let test_snapshot_roundtrip () =
  let sim = Sim_fs.create () in
  let fs = Sim_fs.fs sim in
  Alcotest.(check bool) "no snapshot yet" true (Snapshot.load fs = Ok None);
  let store = Store.create () in
  ignore (Store.execute store (C.Set ("k", "binary\r\n\x00v")));
  ignore (Store.execute store (C.Zadd ("z", 5, 7)));
  let dump = Store.dump store in
  Snapshot.write fs ~upto:17 dump;
  (match Snapshot.load fs with
  | Ok (Some (upto, d)) ->
      Alcotest.(check int) "covered prefix" 17 upto;
      let loaded = Store.create () in
      (match Store.load loaded d with
      | Ok () -> ()
      | Error e -> Alcotest.failf "load: %s" e);
      Alcotest.(check bool) "logical equality" true
        (Store.fingerprint loaded = Store.fingerprint store)
  | Ok None -> Alcotest.fail "snapshot missing"
  | Error e -> Alcotest.failf "load: %s" e);
  (* corruption is a hard error, not a silent fresh start *)
  (match fs.Vfs.read_file Snapshot.file with
  | Some bytes ->
      let m = Bytes.of_string bytes in
      Bytes.set m (Bytes.length m - 1) '\x00';
      fs.Vfs.write_atomic Snapshot.file (Bytes.to_string m);
      Alcotest.(check bool) "corrupt snapshot rejected" true
        (match Snapshot.load fs with Error _ -> true | Ok _ -> false)
  | None -> Alcotest.fail "snapshot file missing")

(* --- persister: logging, recovery, compaction --- *)

let update_cmds =
  [
    C.Set ("a", "1");
    C.Zadd ("z", 10, 1);
    C.Incr "n";
    C.Set ("b", "two");
    C.Zincrby ("z", -3, 1);
    C.Del "a";
    C.Mset [ ("c", "3"); ("d", "4") ];
    C.Zadd ("z", 7, 2);
    C.Incrby ("n", 41);
    C.Zrem ("z", 1);
  ]

let oracle_fingerprint cmds =
  let s = Store.create () in
  List.iter
    (fun c -> match c with Some c -> ignore (Store.execute s c) | None -> ())
    cmds;
  Store.fingerprint s

let create_persister ?snapshot_every ?(policy = Aof.Every_n 2) fs =
  match Persister.create fs ~policy ~now_ms:zero_ms ?snapshot_every () with
  | Ok pr -> pr
  | Error e -> Alcotest.failf "persister create: %s" e

let test_persister_log_and_recover () =
  let sim = Sim_fs.create () in
  let fs = Sim_fs.fs sim in
  let p, r0 = create_persister fs in
  Alcotest.(check int) "fresh cursor" 0 (Persister.cursor p);
  Alcotest.(check bool) "fresh recovery empty" true
    (r0.Persister.snapshot_upto = None && r0.Persister.replayed = 0);
  let logged = List.map Option.some update_cmds @ [ None ] in
  Persister.observe p logged;
  Alcotest.(check int) "cursor advanced" (List.length logged)
    (Persister.cursor p);
  Alcotest.(check bool) "shadow tracks oracle" true
    (Persister.fingerprint p = oracle_fingerprint logged);
  Persister.close p;
  (* clean restart: everything back, via AOF replay alone *)
  let p2, r = create_persister fs in
  Alcotest.(check int) "recovered cursor" (List.length logged)
    (Persister.cursor p2);
  Alcotest.(check int) "replayed all ops" (List.length update_cmds)
    r.Persister.replayed;
  Alcotest.(check bool) "recovered state" true
    (Persister.fingerprint p2 = oracle_fingerprint logged)

let test_persister_snapshot_compaction () =
  let sim = Sim_fs.create () in
  let fs = Sim_fs.fs sim in
  let p, _ = create_persister ~snapshot_every:4 fs in
  let logged = List.map Option.some update_cmds in
  Persister.observe p logged;
  (* 10 ops at cadence 4: at least two rotations happened *)
  Alcotest.(check bool) "aof was compacted" true (Persister.aof_base p > 0);
  Persister.close p;
  let p2, r = create_persister fs in
  Alcotest.(check bool) "snapshot participated in recovery" true
    (r.Persister.snapshot_upto <> None);
  Alcotest.(check bool) "replay shorter than history" true
    (r.Persister.replayed < List.length logged);
  Alcotest.(check int) "cursor preserved" (List.length logged)
    (Persister.cursor p2);
  Alcotest.(check bool) "state preserved" true
    (Persister.fingerprint p2 = oracle_fingerprint logged)

(* --- crash-recovery sweep: every kill point, qcheck over schedules --- *)

let update_cmd_gen =
  QCheck.Gen.(
    let key = string_size ~gen:(char_range 'a' 'e') (return 1) in
    frequency
      [
        (4, map2 (fun k v -> Some (C.Set (k, v))) key small_string);
        (2, map (fun k -> Some (C.Incr k)) key);
        (3, map3 (fun k s m -> Some (C.Zadd (k, s, m))) key small_nat small_nat);
        (2, map3 (fun k d m -> Some (C.Zincrby (k, d, m))) key small_nat small_nat);
        (1, map (fun k -> Some (C.Del k)) key);
        (1, return (Some C.Flushall));
        (1, return None (* poisoned log slot *));
      ])

let crash_case_gen =
  QCheck.Gen.(
    let* cmds = list_size (int_range 5 40) update_cmd_gen in
    let* kill = int_range 1 80 in
    let* seed = int_bound 10_000 in
    let* policy =
      oneofl [ Aof.Always; Aof.Every_n 3; Aof.Every_ms 5; Aof.Never ]
    in
    let* snapshot_every = oneofl [ None; Some 3; Some 7 ] in
    return (cmds, kill, seed, policy, snapshot_every))

let print_crash_case (cmds, kill, seed, policy, snap) =
  Format.asprintf "%d cmds, kill@%d, seed %d, %a, snap %s" (List.length cmds)
    kill seed Aof.pp_policy policy
    (match snap with None -> "never" | Some n -> string_of_int n)

(* One crash schedule: log commands into a persister over a Sim_fs armed
   to die at the [kill]-th IO point, then recover and check the Durable
   spec — no acked write lost, recovered state = oracle replay of the
   recovered prefix. *)
let run_crash_case (cmds, kill, seed, policy, snapshot_every) =
  let plan = { Nr_sim.Fault_plan.none with seed; kills_at = [ (0, kill) ] } in
  let sim = Sim_fs.create ~plan () in
  let fs = Sim_fs.fs sim in
  let clock = ref 0 in
  let now_ms () = !clock in
  let acked = ref 0 in
  (* the kill point may hit anywhere, including the initial header write
     inside create itself — any Crashed is a legitimate schedule *)
  (try
     match Persister.create fs ~policy ~now_ms ?snapshot_every () with
     | Error e -> QCheck.Test.fail_reportf "create: %s" e
     | Ok (p, _) ->
         List.iter
           (fun op ->
             incr clock;
             Persister.observe p [ op ];
             acked := Persister.durable_seq p)
           cmds;
         Persister.sync p;
         acked := Persister.durable_seq p
   with Sim_fs.Crashed -> ());
  Sim_fs.reboot sim;
  (* recovery runs over the crash image with injection disarmed *)
  match Persister.create fs ~policy:Aof.Never ~now_ms () with
  | Error e -> QCheck.Test.fail_reportf "recovery refused: %s" e
  | Ok (p2, _) ->
      let verdict =
        Nr_check.Durable.check ~logged:cmds ~acked:!acked
          ~recovered_seq:(Persister.cursor p2)
          ~recovered_dump:(Persister.dump p2)
      in
      if not (Nr_check.Durable.is_durable verdict) then
        QCheck.Test.fail_reportf "%a" Nr_check.Durable.pp verdict;
      true

let crash_recovery_sweep =
  QCheck.Test.make ~count:300 ~name:"crash recovery meets the durable spec"
    (QCheck.make crash_case_gen ~print:print_crash_case)
    run_crash_case

let test_crash_recovery_golden () =
  (* one pinned schedule, useful as a fast regression before the sweep *)
  let cmds = List.map Option.some update_cmds in
  List.iter
    (fun kill ->
      ignore (run_crash_case (cmds, kill, 0xD15C, Aof.Every_n 2, Some 4)))
    [ 1; 2; 3; 5; 8; 13; 21 ]

(* --- log tap: the NR log as a change feed --- *)

let test_log_tap_matches_log_entries () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module NR = Nr_core.Node_replication.Make (R) (Store) in
  let nr = NR.create (fun () -> Store.create ()) in
  let tapped = ref [] in
  let cursor = ref 0 in
  for tid = 0 to 3 do
    S.spawn sched ~tid (fun () ->
        for i = 1 to 25 do
          ignore
            (NR.execute nr (C.Set (Printf.sprintf "k%d-%d" tid i, "v")));
          (* tap incrementally from whatever thread ran last *)
          if tid = 0 then
            match NR.Unsafe.log_tap nr ~from:!cursor with
            | Ok ops ->
                tapped := !tapped @ ops;
                cursor := !cursor + List.length ops
            | Error _ -> Alcotest.fail "tap overrun on small run"
        done)
  done;
  S.run sched;
  (* final drain *)
  (match NR.Unsafe.log_tap nr ~from:!cursor with
  | Ok ops ->
      tapped := !tapped @ ops;
      cursor := !cursor + List.length ops
  | Error _ -> Alcotest.fail "tap overrun at drain");
  let entries, wrapped = NR.Unsafe.log_entries nr in
  Alcotest.(check int) "nothing recycled" 0 wrapped;
  Alcotest.(check int) "tap covered the completed prefix" (NR.completed nr)
    !cursor;
  Alcotest.(check bool) "incremental taps = full suffix" true (!tapped = entries)

let test_log_tap_lap_detection () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module NR = Nr_core.Node_replication.Make (R) (Store) in
  let cfg = { Nr_core.Config.default with log_size = 32 } in
  let nr = NR.create ~cfg (fun () -> Store.create ()) in
  for tid = 0 to 3 do
    S.spawn sched ~tid (fun () ->
        for i = 1 to 40 do
          ignore (NR.execute nr (C.Set (Printf.sprintf "k%d-%d" tid i, "v")))
        done)
  done;
  S.run sched;
  (* 160 ops through a 32-slot ring: position 0 is long recycled *)
  match NR.Unsafe.log_tap nr ~from:0 with
  | Error oldest ->
      Alcotest.(check bool) "oldest within the ring" true
        (oldest > 0 && oldest >= NR.log_tail nr - 32);
      (* a cursor at the reported oldest works *)
      (match NR.Unsafe.log_tap nr ~from:oldest with
      | Ok ops ->
          Alcotest.(check int) "resync tap reaches completed"
            (NR.completed nr) (oldest + List.length ops)
      | Error _ -> Alcotest.fail "tap from oldest failed")
  | Ok _ -> Alcotest.fail "lapped cursor must be rejected"

(* --- NR + persister end-to-end on the simulator --- *)

let test_nr_persister_integration () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module NR = Nr_core.Node_replication.Make (R) (Store) in
  let nr = NR.create (fun () -> Store.create ()) in
  let sim = Sim_fs.create () in
  let fs = Sim_fs.fs sim in
  let p, _ = create_persister ~snapshot_every:16 fs in
  let cursor = ref 0 in
  let drain () =
    match NR.Unsafe.log_tap nr ~from:!cursor with
    | Ok ops ->
        cursor := !cursor + List.length ops;
        Persister.observe p ops
    | Error _ -> Alcotest.fail "tap overrun"
  in
  for tid = 0 to 3 do
    S.spawn sched ~tid (fun () ->
        for i = 1 to 30 do
          ignore
            (NR.execute nr
               (C.Zadd ("board", (tid * 31) + i, (tid * 1000) + i)));
          drain ()
        done)
  done;
  S.run sched;
  drain ();
  (* the persister's shadow replayed the same log the replicas did *)
  NR.Unsafe.sync nr;
  Alcotest.(check bool) "shadow = replica 0" true
    (Store.fingerprint (NR.Unsafe.replica nr 0) = Persister.fingerprint p);
  (* and survives a restart *)
  Persister.close p;
  let p2, _ = create_persister fs in
  Alcotest.(check bool) "recovered = replica 0" true
    (Store.fingerprint (NR.Unsafe.replica nr 0) = Persister.fingerprint p2)

(* --- replication: follower catch-up --- *)

let exec_on store cmd = Store.execute store cmd

let test_follower_continue_and_fullresync () =
  let sim = Sim_fs.create () in
  let fs = Sim_fs.fs sim in
  let p, _ = create_persister ~snapshot_every:6 fs in
  let follower = Store.create () in
  let offset = ref 0 in
  let psync () =
    match Persister.handle_sync p (C.Psync !offset) with
    | Some reply -> (
        match Replication.apply ~exec:(exec_on follower) ~offset:!offset reply with
        | Ok off -> offset := off
        | Error e -> Alcotest.failf "apply: %s" e)
    | None -> Alcotest.fail "handle_sync ignored PSYNC"
  in
  (* batch 1: partial resync from 0 over an uncompacted AOF *)
  Persister.observe p (List.map Option.some (List.filteri (fun i _ -> i < 4) update_cmds));
  psync ();
  Alcotest.(check int) "offset caught up" (Persister.cursor p) !offset;
  Alcotest.(check bool) "follower = leader" true
    (Store.fingerprint follower = Persister.fingerprint p);
  (* batch 2: more ops, incremental catch-up applies only the suffix *)
  Persister.observe p (List.map Option.some update_cmds);
  psync ();
  Alcotest.(check bool) "follower tracked the suffix" true
    (Store.fingerprint follower = Persister.fingerprint p);
  (* compaction moved the AOF base past a stale cursor: full resync *)
  let stale = Store.create () in
  ignore (Store.execute stale (C.Set ("junk", "junk")));
  (match Persister.handle_sync p (C.Psync 0) with
  | Some reply -> (
      (match reply with
      | C.Array (C.Bulk "FULLRESYNC" :: _) -> ()
      | _ -> Alcotest.fail "stale cursor should demote to full resync");
      match Replication.apply ~exec:(exec_on stale) ~offset:0 reply with
      | Ok off ->
          Alcotest.(check int) "resync offset" (Persister.cursor p) off;
          Alcotest.(check bool) "stale follower converged (junk flushed)" true
            (Store.fingerprint stale = Persister.fingerprint p)
      | Error e -> Alcotest.failf "full resync apply: %s" e)
  | None -> Alcotest.fail "handle_sync ignored PSYNC");
  (* SYNC is always a full image *)
  match Persister.handle_sync p C.Sync with
  | Some (C.Array (C.Bulk "FULLRESYNC" :: _)) -> ()
  | _ -> Alcotest.fail "SYNC should full-resync"

(* --- real files: the Unix vfs backend --- *)

let with_temp_dir f =
  let dir = Filename.temp_file "nr_durable_test" "" in
  Sys.remove dir;
  let r = f dir in
  (try
     Array.iter
       (fun file -> Sys.remove (Filename.concat dir file))
       (Sys.readdir dir)
   with Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  r

let test_real_vfs_roundtrip () =
  with_temp_dir (fun dir ->
      let logged = List.map Option.some update_cmds in
      (let fs = Vfs.real ~root:dir in
       let p, _ = create_persister ~snapshot_every:4 ~policy:Aof.Always fs in
       Persister.observe p logged;
       Persister.close p);
      (* a brand-new vfs over the same directory recovers everything *)
      let fs = Vfs.real ~root:dir in
      let p2, r = create_persister fs in
      Alcotest.(check int) "cursor" (List.length logged) (Persister.cursor p2);
      Alcotest.(check bool) "snapshot used" true (r.Persister.snapshot_upto <> None);
      Alcotest.(check bool) "state" true
        (Persister.fingerprint p2 = oracle_fingerprint logged))

(* --- leader/follower over real TCP, long-lived connection shutdown --- *)

let test_tcp_leader_follower () =
  let sim = Sim_fs.create () in
  let fs = Sim_fs.fs sim in
  let p, _ = create_persister ~policy:Aof.Always fs in
  let store = Store.create () in
  let m = Mutex.create () in
  let locked f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  in
  let exec cmd =
    locked (fun () ->
        let r = Store.execute store cmd in
        if not (C.is_read_only cmd) then Persister.observe p [ Some cmd ];
        r)
  in
  let special cmd =
    match cmd with
    | C.Sync | C.Psync _ -> locked (fun () -> Persister.handle_sync p cmd)
    | _ -> None
  in
  let server = Nr_kvstore.Server.create ~special ~port:0 ~workers:2 exec in
  let port = Nr_kvstore.Server.port server in
  let accept_domain = Domain.spawn (fun () -> Nr_kvstore.Server.serve server) in
  (* a writing client *)
  List.iter (fun cmd -> ignore (exec cmd)) (List.filteri (fun i _ -> i < 6) update_cmds);
  (* the follower connects and catches up over the wire *)
  (match Replication.connect ~host:"127.0.0.1" ~port () with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok conn ->
      let follower = Store.create () in
      (match Replication.poll conn ~exec:(exec_on follower) ~offset:0 with
      | Ok off ->
          Alcotest.(check int) "offset" (locked (fun () -> Persister.cursor p)) off;
          Alcotest.(check bool) "fingerprints equal over TCP" true
            (Store.fingerprint follower
            = locked (fun () -> Persister.fingerprint p))
      | Error e -> Alcotest.failf "poll: %s" e);
      (* regression: shut the server down while this replication
         connection is still open and parked in a blocking read on the
         server side — the drain must break it, not deadlock the join *)
      Nr_kvstore.Server.shutdown server;
      Domain.join accept_domain;
      Replication.close conn)

let suite =
  [
    Alcotest.test_case "crc32 known answers" `Quick test_crc32_kat;
    Alcotest.test_case "frame roundtrip + corruption" `Quick test_frame_roundtrip;
    QCheck_alcotest.to_alcotest frame_qcheck;
    Alcotest.test_case "frame scan torn golden" `Quick test_frame_scan_torn_golden;
    Alcotest.test_case "sim_fs crash keeps durable prefix" `Quick
      test_sim_fs_crash_keeps_durable;
    Alcotest.test_case "aof append/reopen" `Quick test_aof_append_reopen;
    Alcotest.test_case "aof fsync policies" `Quick test_aof_fsync_policies;
    Alcotest.test_case "aof torn tail truncated" `Quick
      test_aof_torn_tail_truncated_before_append;
    Alcotest.test_case "snapshot roundtrip + corruption" `Quick
      test_snapshot_roundtrip;
    Alcotest.test_case "persister log + recover" `Quick
      test_persister_log_and_recover;
    Alcotest.test_case "persister snapshot compaction" `Quick
      test_persister_snapshot_compaction;
    Alcotest.test_case "crash recovery golden kills" `Quick
      test_crash_recovery_golden;
    QCheck_alcotest.to_alcotest crash_recovery_sweep;
    Alcotest.test_case "log tap matches log entries" `Quick
      test_log_tap_matches_log_entries;
    Alcotest.test_case "log tap lap detection" `Quick test_log_tap_lap_detection;
    Alcotest.test_case "nr + persister integration" `Quick
      test_nr_persister_integration;
    Alcotest.test_case "follower continue + fullresync" `Quick
      test_follower_continue_and_fullresync;
    Alcotest.test_case "real vfs roundtrip" `Quick test_real_vfs_roundtrip;
    Alcotest.test_case "tcp leader/follower + shutdown drain" `Slow
      test_tcp_leader_follower;
  ]

(* Memory-accounting table (paper figs. 5f/6c/7e): NR must cost roughly
   (replica count) x structure plus the log. *)

let test_rows () =
  let params = { Nr_harness.Params.quick with population = 5_000 } in
  let rows = Nr_harness.Memsize.rows params in
  Alcotest.(check int) "three structures" 3 (List.length rows);
  List.iter
    (fun r ->
      let open Nr_harness.Memsize in
      if r.others_mb <= 0.0 then Alcotest.failf "%s: empty baseline" r.structure;
      let ratio = r.nr_mb /. r.others_mb in
      (* 4 replicas plus the log: between ~3.5x and ~40x (the log dominates
         for small structures) *)
      if ratio < 3.5 then
        Alcotest.failf "%s: NR ratio %.1f implausibly small" r.structure ratio)
    rows

let suite = [ Alcotest.test_case "memory table" `Slow test_rows ]

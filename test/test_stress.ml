(* Contended-key accounting stress: the invariant that exposed a real bug
   in the lock-free skip list (a remove "succeeding" against an already
   resurrected link), applied to every method on the dictionary workload:

     per key:  successful adds - successful removes = presence (0 or 1)

   A linearizable set cannot violate this.  Runs at 16-32 simulated threads
   over a tiny key space, maximizing collisions. *)

module S = Nr_sim.Sched
module T = Nr_sim.Topology

let dict_accounting_scenario ~threads ~per_thread ~keys build =
  let sched = S.create T.intel in
  let rt = Nr_runtime.Runtime_sim.make sched in
  let exec = build rt in
  let adds = Array.make keys 0 and removes = Array.make keys 0 in
  for tid = 0 to threads - 1 do
    let rng = Nr_workload.Prng.create ~seed:(tid + 31) in
    S.spawn sched ~tid (fun () ->
        for _ = 1 to per_thread do
          let k = Nr_workload.Prng.below rng keys in
          match Nr_workload.Prng.below rng 3 with
          | 0 -> (
              match exec (Nr_seqds.Dict_ops.Insert (k, k)) with
              | Nr_seqds.Dict_ops.Added true -> adds.(k) <- adds.(k) + 1
              | Nr_seqds.Dict_ops.Added false -> ()
              | _ -> Alcotest.fail "bad insert reply")
          | 1 -> (
              match exec (Nr_seqds.Dict_ops.Remove k) with
              | Nr_seqds.Dict_ops.Removed (Some _) ->
                  removes.(k) <- removes.(k) + 1
              | Nr_seqds.Dict_ops.Removed None -> ()
              | _ -> Alcotest.fail "bad remove reply")
          | _ -> ignore (exec (Nr_seqds.Dict_ops.Lookup k))
        done)
  done;
  S.run sched;
  (* final presence via lookups from a fresh simulated thread *)
  let sched2_probe k =
    match exec (Nr_seqds.Dict_ops.Lookup k) with
    | Nr_seqds.Dict_ops.Found r -> r <> None
    | _ -> Alcotest.fail "bad lookup reply"
  in
  for k = 0 to keys - 1 do
    let net = adds.(k) - removes.(k) in
    let present = sched2_probe k in
    if net <> if present then 1 else 0 then
      Alcotest.failf "key %d: adds=%d removes=%d present=%b" k adds.(k)
        removes.(k) present
  done

let nr_dict rt =
  let module R = (val rt : Nr_runtime.Runtime_intf.S) in
  let module NR = Nr_core.Node_replication.Make (R) (Nr_seqds.Skiplist_dict) in
  let t = NR.create (fun () -> Nr_seqds.Skiplist_dict.create ()) in
  NR.execute t

let wrapped m rt =
  let module W = Nr_harness.Families.Wrap (Nr_seqds.Skiplist_dict) in
  W.build rt m ~factory:(fun () -> Nr_seqds.Skiplist_dict.create ()) ()

let lf_dict rt =
  let module R = (val rt : Nr_runtime.Runtime_intf.S) in
  let module Lf = Nr_baselines.Lf_skiplist.Make (R) in
  let t = Lf.create () in
  fun op ->
    match op with
    | Nr_seqds.Dict_ops.Insert (k, v) -> Nr_seqds.Dict_ops.Added (Lf.add t k v)
    | Nr_seqds.Dict_ops.Remove k -> Nr_seqds.Dict_ops.Removed (Lf.remove t k)
    | Nr_seqds.Dict_ops.Lookup k -> Nr_seqds.Dict_ops.Found (Lf.get t k)

let case name build =
  Alcotest.test_case name `Quick (fun () ->
      dict_accounting_scenario ~threads:24 ~per_thread:120 ~keys:6 build)

let nr_avl rt =
  let module R = (val rt : Nr_runtime.Runtime_intf.S) in
  let module NR = Nr_core.Node_replication.Make (R) (Nr_seqds.Avl_dict) in
  let t = NR.create (fun () -> Nr_seqds.Avl_dict.create ()) in
  NR.execute t

let suite =
  [
    case "NR skiplist dict accounting" nr_dict;
    case "NR avl dict accounting" nr_avl;
    case "SL accounting" (wrapped Nr_harness.Method.SL);
    case "RWL accounting" (wrapped Nr_harness.Method.RWL);
    case "FC accounting" (wrapped Nr_harness.Method.FC);
    case "FC+ accounting" (wrapped Nr_harness.Method.FCplus);
    case "LF skiplist accounting" lf_dict;
  ]

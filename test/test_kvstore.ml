(* KV-store tests: sorted sets, the command layer, the RESP codec, the
   worker pool and the TCP server end-to-end. *)

open Nr_kvstore

let check_valid = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "zset invariant broken: %s" e

(* --- zset --- *)

let test_zset_add_score () =
  let z = Zset.create () in
  Alcotest.(check bool) "new member" true (Zset.add z ~member:1 ~score:10);
  Alcotest.(check bool) "update member" false (Zset.add z ~member:1 ~score:20);
  Alcotest.(check (option int)) "score" (Some 20) (Zset.score z 1);
  Alcotest.(check int) "cardinal" 1 (Zset.cardinal z);
  check_valid (Zset.validate z)

let test_zset_rank () =
  let z = Zset.create () in
  ignore (Zset.add z ~member:10 ~score:300);
  ignore (Zset.add z ~member:20 ~score:100);
  ignore (Zset.add z ~member:30 ~score:200);
  Alcotest.(check (option int)) "lowest score rank 0" (Some 0) (Zset.rank z 20);
  Alcotest.(check (option int)) "middle" (Some 1) (Zset.rank z 30);
  Alcotest.(check (option int)) "highest" (Some 2) (Zset.rank z 10);
  Alcotest.(check (option int)) "absent" None (Zset.rank z 99);
  check_valid (Zset.validate z)

let test_zset_rank_ties_by_member () =
  let z = Zset.create () in
  ignore (Zset.add z ~member:5 ~score:100);
  ignore (Zset.add z ~member:3 ~score:100);
  Alcotest.(check (option int)) "tie broken by member id" (Some 0)
    (Zset.rank z 3);
  Alcotest.(check (option int)) "tie second" (Some 1) (Zset.rank z 5)

let test_zset_incrby () =
  let z = Zset.create () in
  Alcotest.(check int) "incr absent starts at 0" 5
    (Zset.incrby z ~member:7 ~delta:5);
  Alcotest.(check int) "incr again" 8 (Zset.incrby z ~member:7 ~delta:3);
  Alcotest.(check (option int)) "score tracked" (Some 8) (Zset.score z 7);
  Alcotest.(check int) "single member" 1 (Zset.cardinal z);
  check_valid (Zset.validate z)

let test_zset_range_remove () =
  let z = Zset.create () in
  for m = 0 to 9 do
    ignore (Zset.add z ~member:m ~score:(m * 10))
  done;
  Alcotest.(check (list (pair int int)))
    "range 2..4"
    [ (2, 20); (3, 30); (4, 40) ]
    (Zset.range z ~start:2 ~stop:4);
  Alcotest.(check (list (pair int int)))
    "negative indices"
    [ (8, 80); (9, 90) ]
    (Zset.range z ~start:(-2) ~stop:(-1));
  Alcotest.(check bool) "remove" true (Zset.remove z 5);
  Alcotest.(check bool) "remove absent" false (Zset.remove z 5);
  Alcotest.(check int) "cardinal after remove" 9 (Zset.cardinal z);
  check_valid (Zset.validate z)

let zset_model_test =
  QCheck.Test.make ~count:200 ~name:"zset rank consistent with sorted model"
    QCheck.(list (pair (int_bound 20) (int_bound 100)))
    (fun pairs ->
      let z = Zset.create () in
      List.iter (fun (m, s) -> ignore (Zset.add z ~member:m ~score:s)) pairs;
      (match Zset.validate z with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report e);
      (* recompute ranks from the model *)
      let model =
        List.sort compare
          (List.filter_map
             (fun (m, _) ->
               match Zset.score z m with Some s -> Some (s, m) | None -> None)
             (List.sort_uniq compare pairs))
      in
      let model = List.sort_uniq compare model in
      List.for_all
        (fun (s, m) ->
          let expected =
            let rec index i = function
              | [] -> None
              | (s', m') :: _ when s' = s && m' = m -> Some i
              | _ :: rest -> index (i + 1) rest
            in
            index 0 model
          in
          Zset.rank z m = expected)
        model)

(* --- store / commands --- *)

let test_store_strings () =
  let s = Store.create () in
  Alcotest.(check bool) "get missing" true (Store.execute s (Command.Get "k") = Command.Nil);
  ignore (Store.execute s (Command.Set ("k", "v")));
  Alcotest.(check bool) "get" true (Store.execute s (Command.Get "k") = Command.Bulk "v");
  Alcotest.(check bool) "exists" true (Store.execute s (Command.Exists "k") = Command.Int 1);
  Alcotest.(check bool) "del" true (Store.execute s (Command.Del "k") = Command.Int 1);
  Alcotest.(check bool) "del again" true (Store.execute s (Command.Del "k") = Command.Int 0)

let test_store_incr () =
  let s = Store.create () in
  Alcotest.(check bool) "incr fresh" true (Store.execute s (Command.Incr "n") = Command.Int 1);
  Alcotest.(check bool) "incrby" true
    (Store.execute s (Command.Incrby ("n", 10)) = Command.Int 11);
  ignore (Store.execute s (Command.Set ("str", "abc")));
  match Store.execute s (Command.Incr "str") with
  | Command.Err _ -> ()
  | _ -> Alcotest.fail "incr of non-integer should error"

let test_store_zsets () =
  let s = Store.create () in
  Alcotest.(check bool) "zadd" true
    (Store.execute s (Command.Zadd ("z", 10, 1)) = Command.Int 1);
  Alcotest.(check bool) "zadd existing" true
    (Store.execute s (Command.Zadd ("z", 20, 1)) = Command.Int 0);
  Alcotest.(check bool) "zscore" true
    (Store.execute s (Command.Zscore ("z", 1)) = Command.Int 20);
  Alcotest.(check bool) "zincrby" true
    (Store.execute s (Command.Zincrby ("z", 5, 1)) = Command.Int 25);
  Alcotest.(check bool) "zcard" true
    (Store.execute s (Command.Zcard "z") = Command.Int 1);
  Alcotest.(check bool) "zrank" true
    (Store.execute s (Command.Zrank ("z", 1)) = Command.Int 0);
  Alcotest.(check bool) "zrank absent member" true
    (Store.execute s (Command.Zrank ("z", 9)) = Command.Nil);
  Alcotest.(check bool) "zrem" true
    (Store.execute s (Command.Zrem ("z", 1)) = Command.Int 1)

let test_store_wrongtype () =
  let s = Store.create () in
  ignore (Store.execute s (Command.Set ("k", "v")));
  (match Store.execute s (Command.Zadd ("k", 1, 1)) with
  | Command.Err _ -> ()
  | _ -> Alcotest.fail "zadd on string should error");
  ignore (Store.execute s (Command.Zadd ("z", 1, 1)));
  match Store.execute s (Command.Get "z") with
  | Command.Err _ -> ()
  | _ -> Alcotest.fail "get on zset should error"

let test_store_dbsize_flush () =
  let s = Store.create () in
  ignore (Store.execute s (Command.Set ("a", "1")));
  ignore (Store.execute s (Command.Zadd ("z", 1, 1)));
  Alcotest.(check bool) "dbsize" true (Store.execute s Command.Dbsize = Command.Int 2);
  ignore (Store.execute s Command.Flushall);
  Alcotest.(check bool) "flushed" true (Store.execute s Command.Dbsize = Command.Int 0)

let test_store_multikey () =
  let s = Store.create () in
  Alcotest.(check bool)
    "mset" true
    (Store.execute s (Command.Mset [ ("a", "1"); ("b", "2"); ("a", "3") ])
    = Command.Ok_reply);
  Alcotest.(check bool)
    "later binding of a repeated key wins" true
    (Store.execute s (Command.Get "a") = Command.Bulk "3");
  ignore (Store.execute s (Command.Zadd ("z", 1, 1)));
  Alcotest.(check bool)
    "mget: hits in order, absent and wrongtype are Nil" true
    (Store.execute s (Command.Mget [ "b"; "nope"; "z"; "a" ])
    = Command.Array [ Command.Bulk "2"; Command.Nil; Command.Nil; Command.Bulk "3" ]);
  Alcotest.(check bool)
    "mget is read-only / mset is not" true
    (Command.is_read_only (Command.Mget [ "a" ])
    && not (Command.is_read_only (Command.Mset [ ("a", "1") ])));
  Alcotest.(check bool)
    "empty MGET is a parse error" true
    (match Command.of_strings [ "MGET" ] with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool)
    "odd MSET arity is a parse error" true
    (match Command.of_strings [ "MSET"; "a"; "1"; "b" ] with
    | Error _ -> true
    | Ok _ -> false)

let test_parse_reply () =
  let roundtrip r =
    match Resp.parse_reply (Resp.encode_reply r) with
    | Resp.RParsed (r', n) ->
        r = r' && n = String.length (Resp.encode_reply r)
    | _ -> false
  in
  List.iter
    (fun r -> Alcotest.(check bool) "reply roundtrips" true (roundtrip r))
    [
      Command.Ok_reply;
      Command.Pong;
      Command.Int (-42);
      Command.Bulk "with\r\nbinary\x00bytes";
      Command.Nil;
      Command.Err "wrong number of arguments";
      Command.Array [ Command.Bulk "1"; Command.Nil; Command.Int 7 ];
      Command.Array [];
    ];
  Alcotest.(check bool)
    "truncated reply is incomplete" true
    (Resp.parse_reply "$5\r\nhel" = Resp.RIncomplete);
  Alcotest.(check bool)
    "junk is invalid" true
    (match Resp.parse_reply "?what" with Resp.RInvalid _ -> true | _ -> false)

let test_store_determinism () =
  (* identical command sequences produce identical replicas, including
     zset skip lists — required for NR *)
  let run () =
    let s = Store.create () in
    let rng = Nr_workload.Prng.create ~seed:5 in
    for _ = 1 to 500 do
      let m = Nr_workload.Prng.below rng 40 in
      ignore (Store.execute s (Command.Zincrby ("z", 1, m)))
    done;
    s
  in
  let a = run () and b = run () in
  for m = 0 to 39 do
    Alcotest.(check bool)
      (Printf.sprintf "member %d same rank" m)
      true
      (Store.execute a (Command.Zrank ("z", m))
      = Store.execute b (Command.Zrank ("z", m)))
  done

let test_command_parse () =
  let ok c tokens =
    match Command.of_strings tokens with
    | Ok c' when c = c' -> ()
    | Ok _ -> Alcotest.failf "parsed wrong command from %s" (String.concat " " tokens)
    | Error e -> Alcotest.failf "parse error: %s" e
  in
  ok Command.Ping [ "PING" ];
  ok (Command.Get "k") [ "get"; "k" ];
  ok (Command.Set ("k", "v")) [ "SET"; "k"; "v" ];
  ok (Command.Zadd ("z", 5, 7)) [ "zadd"; "z"; "5"; "7" ];
  ok (Command.Zincrby ("z", -2, 7)) [ "ZINCRBY"; "z"; "-2"; "7" ];
  ok (Command.Zrange ("z", 0, -1)) [ "zrange"; "z"; "0"; "-1" ];
  (match Command.of_strings [ "bogus" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus accepted");
  match Command.of_strings [ "zadd"; "z"; "x"; "1" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-integer score accepted"

let test_sync_psync () =
  let ok c tokens =
    match Command.of_strings tokens with
    | Ok c' when c = c' -> ()
    | Ok _ -> Alcotest.failf "parsed wrong command from %s" (String.concat " " tokens)
    | Error e -> Alcotest.failf "parse error: %s" e
  in
  ok Command.Sync [ "SYNC" ];
  ok (Command.Psync 42) [ "psync"; "42" ];
  Alcotest.(check (list string)) "psync prints" [ "PSYNC"; "42" ]
    (Command.to_strings (Command.Psync 42));
  (* read-only: replication handshakes never enter the NR log *)
  Alcotest.(check bool) "read-only" true
    (Command.is_read_only Command.Sync && Command.is_read_only (Command.Psync 0));
  (* a store that receives one (no serving layer) refuses politely *)
  let s = Store.create () in
  match Store.execute s Command.Sync with
  | Command.Err _ -> ()
  | _ -> Alcotest.fail "store should refuse SYNC"

(* --- RESP --- *)

let test_resp_roundtrip () =
  let tokens = [ "ZADD"; "key"; "10"; "42" ] in
  let wire = Resp.encode_request tokens in
  match Resp.parse_request wire with
  | Resp.Parsed (tokens', consumed) ->
      Alcotest.(check (list string)) "tokens" tokens tokens';
      Alcotest.(check int) "consumed all" (String.length wire) consumed
  | Resp.Incomplete -> Alcotest.fail "incomplete"
  | Resp.Invalid e -> Alcotest.failf "invalid: %s" e

let test_resp_incomplete () =
  let wire = Resp.encode_request [ "GET"; "key" ] in
  for cut = 1 to String.length wire - 1 do
    match Resp.parse_request (String.sub wire 0 cut) with
    | Resp.Incomplete -> ()
    | Resp.Parsed _ -> Alcotest.failf "prefix of %d parsed" cut
    | Resp.Invalid e -> Alcotest.failf "prefix of %d invalid: %s" cut e
  done

let test_resp_inline () =
  match Resp.parse_request "PING\r\n" with
  | Resp.Parsed ([ "PING" ], 6) -> ()
  | _ -> Alcotest.fail "inline command"

let test_resp_pipeline () =
  let a = Resp.encode_request [ "PING" ] in
  let b = Resp.encode_request [ "GET"; "x" ] in
  match Resp.parse_request (a ^ b) with
  | Resp.Parsed ([ "PING" ], consumed) ->
      Alcotest.(check int) "consumed only first" (String.length a) consumed
  | _ -> Alcotest.fail "pipeline first request"

let test_resp_invalid () =
  (match Resp.parse_request "*x\r\n" with
  | Resp.Invalid _ -> ()
  | _ -> Alcotest.fail "bad count accepted");
  match Resp.parse_request "*1\r\n%3\r\nfoo\r\n" with
  | Resp.Invalid _ -> ()
  | _ -> Alcotest.fail "bad bulk marker accepted"

let test_resp_encode_replies () =
  Alcotest.(check string) "ok" "+OK\r\n" (Resp.encode_reply Command.Ok_reply);
  Alcotest.(check string) "int" ":42\r\n" (Resp.encode_reply (Command.Int 42));
  Alcotest.(check string) "bulk" "$3\r\nfoo\r\n"
    (Resp.encode_reply (Command.Bulk "foo"));
  Alcotest.(check string) "nil" "$-1\r\n" (Resp.encode_reply Command.Nil);
  Alcotest.(check string) "array" "*2\r\n:1\r\n:2\r\n"
    (Resp.encode_reply (Command.Array [ Command.Int 1; Command.Int 2 ]))

(* --- thread pool --- *)

let test_thread_pool () =
  let pool = Thread_pool.create ~workers:3 () in
  let counter = Atomic.make 0 in
  for _ = 1 to 100 do
    Thread_pool.submit pool (fun () -> Atomic.incr counter)
  done;
  Thread_pool.shutdown pool;
  Alcotest.(check int) "all jobs ran" 100 (Atomic.get counter)

let test_thread_pool_errors () =
  let hooked = Atomic.make 0 in
  let pool =
    Thread_pool.create ~workers:2
      ~on_error:(fun _ -> Atomic.incr hooked)
      ()
  in
  for i = 1 to 10 do
    Thread_pool.submit pool (fun () -> if i mod 2 = 0 then failwith "boom")
  done;
  Thread_pool.shutdown pool;
  let st = Thread_pool.stats pool in
  Alcotest.(check int) "every job ran" 10 st.Thread_pool.executed;
  Alcotest.(check int) "failures counted" 5 st.Thread_pool.failed;
  Alcotest.(check int) "hook saw each failure" 5 (Atomic.get hooked)

let test_thread_pool_try_submit () =
  let pool = Thread_pool.create ~capacity:1 ~workers:1 () in
  let gate = Atomic.make false in
  (* occupy the single worker... *)
  Thread_pool.submit pool (fun () ->
      while not (Atomic.get gate) do
        Domain.cpu_relax ()
      done);
  (* ...fill the queue behind it... *)
  Thread_pool.submit pool (fun () -> ());
  (* ...so the next offer must be refused, not blocked on *)
  Alcotest.(check bool) "full queue refuses" false
    (Thread_pool.try_submit pool (fun () -> ()));
  Atomic.set gate true;
  Thread_pool.shutdown pool;
  let st = Thread_pool.stats pool in
  Alcotest.(check int) "rejection counted" 1 st.Thread_pool.rejected;
  Alcotest.(check int) "accepted jobs ran" 2 st.Thread_pool.executed;
  Alcotest.(check int) "no failures" 0 st.Thread_pool.failed;
  match Thread_pool.try_submit pool (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "try_submit after shutdown should raise"

let test_thread_pool_submit_shutdown_race () =
  let pool = Thread_pool.create ~capacity:1 ~workers:1 () in
  let gate = Atomic.make false in
  let leaked = Atomic.make false in
  (* occupy the single worker... *)
  Thread_pool.submit pool (fun () ->
      while not (Atomic.get gate) do
        Domain.cpu_relax ()
      done);
  (* ...and fill the capacity-1 queue behind it, so the producer below
     parks in [Condition.wait nonfull] with no worker able to drain *)
  Thread_pool.submit pool (fun () -> ());
  let refused = Atomic.make false in
  let producer =
    Domain.spawn (fun () ->
        match Thread_pool.submit pool (fun () -> Atomic.set leaked true) with
        | () -> ()
        | exception Invalid_argument _ -> Atomic.set refused true)
  in
  (* let the producer reach the wait; then close the pool while the
     queue is still full — the broadcast must wake it into a refusal,
     never into enqueueing the job into the closed pool *)
  Thread.delay 0.05;
  let closer = Domain.spawn (fun () -> Thread_pool.shutdown pool) in
  Domain.join producer;
  Atomic.set gate true;
  Domain.join closer;
  Alcotest.(check bool) "blocked producer refused at shutdown" true
    (Atomic.get refused);
  let st = Thread_pool.stats pool in
  Alcotest.(check int) "only the accepted jobs ran" 2 st.Thread_pool.executed;
  Alcotest.(check bool) "refused job never ran" false (Atomic.get leaked)

(* --- server end-to-end --- *)

let test_server_end_to_end () =
  let store = Store.create () in
  let mutex = Mutex.create () in
  let exec cmd =
    Mutex.lock mutex;
    let r = Store.execute store cmd in
    Mutex.unlock mutex;
    r
  in
  let server = Server.create ~port:0 ~workers:2 exec in
  let port = Server.port server in
  let accept_domain = Domain.spawn (fun () -> Server.serve server) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let send tokens =
    let out = Bytes.of_string (Resp.encode_request tokens) in
    ignore (Unix.write sock out 0 (Bytes.length out))
  in
  let recv () =
    let buf = Bytes.create 4096 in
    let n = Unix.read sock buf 0 4096 in
    Bytes.sub_string buf 0 n
  in
  send [ "PING" ];
  Alcotest.(check string) "pong" "+PONG\r\n" (recv ());
  send [ "ZADD"; "z"; "10"; "1" ];
  Alcotest.(check string) "zadd" ":1\r\n" (recv ());
  send [ "ZRANK"; "z"; "1" ];
  Alcotest.(check string) "zrank" ":0\r\n" (recv ());
  send [ "GET"; "missing" ];
  Alcotest.(check string) "nil" "$-1\r\n" (recv ());
  Unix.close sock;
  Server.shutdown server;
  Domain.join accept_domain

(* Regression: shutdown with a connection still open.  A follower's
   replication link stays connected for the server's whole life, so its
   handler sits in a blocking read; shutdown must break that read and
   join the pool instead of deadlocking behind it. *)
let test_server_shutdown_with_open_connection () =
  let exec _ = Command.Pong in
  let server = Server.create ~port:0 ~workers:2 exec in
  let port = Server.port server in
  let accept_domain = Domain.spawn (fun () -> Server.serve server) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (* prove the handler picked us up, then leave the connection idle *)
  let out = Bytes.of_string (Resp.encode_request [ "PING" ]) in
  ignore (Unix.write sock out 0 (Bytes.length out));
  let buf = Bytes.create 64 in
  ignore (Unix.read sock buf 0 64);
  let t0 = Unix.gettimeofday () in
  Server.shutdown server;
  Domain.join accept_domain;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "shutdown returned promptly (%.1fs)" dt)
    true (dt < 10.0);
  (* the server side closed on us; our end now reads EOF or a reset *)
  (match Unix.read sock buf 0 64 with
  | 0 -> ()
  | _ -> Alcotest.fail "connection should be closed after shutdown"
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
  Unix.close sock

let suite =
  [
    Alcotest.test_case "zset add/score" `Quick test_zset_add_score;
    Alcotest.test_case "zset rank" `Quick test_zset_rank;
    Alcotest.test_case "zset rank ties" `Quick test_zset_rank_ties_by_member;
    Alcotest.test_case "zset incrby" `Quick test_zset_incrby;
    Alcotest.test_case "zset range/remove" `Quick test_zset_range_remove;
    QCheck_alcotest.to_alcotest zset_model_test;
    Alcotest.test_case "store strings" `Quick test_store_strings;
    Alcotest.test_case "store incr" `Quick test_store_incr;
    Alcotest.test_case "store zsets" `Quick test_store_zsets;
    Alcotest.test_case "store wrongtype" `Quick test_store_wrongtype;
    Alcotest.test_case "store dbsize/flush" `Quick test_store_dbsize_flush;
    Alcotest.test_case "store multi-key mget/mset" `Quick test_store_multikey;
    Alcotest.test_case "sync/psync commands" `Quick test_sync_psync;
    Alcotest.test_case "resp reply decoder" `Quick test_parse_reply;
    Alcotest.test_case "store determinism" `Quick test_store_determinism;
    Alcotest.test_case "command parse" `Quick test_command_parse;
    Alcotest.test_case "resp roundtrip" `Quick test_resp_roundtrip;
    Alcotest.test_case "resp incomplete" `Quick test_resp_incomplete;
    Alcotest.test_case "resp inline" `Quick test_resp_inline;
    Alcotest.test_case "resp pipeline" `Quick test_resp_pipeline;
    Alcotest.test_case "resp invalid" `Quick test_resp_invalid;
    Alcotest.test_case "resp encode replies" `Quick test_resp_encode_replies;
    Alcotest.test_case "thread pool" `Slow test_thread_pool;
    Alcotest.test_case "thread pool error accounting" `Slow
      test_thread_pool_errors;
    Alcotest.test_case "thread pool try_submit sheds load" `Slow
      test_thread_pool_try_submit;
    Alcotest.test_case "thread pool submit/shutdown race" `Slow
      test_thread_pool_submit_shutdown_race;
    Alcotest.test_case "server end-to-end" `Slow test_server_end_to_end;
    Alcotest.test_case "server shutdown with open connection" `Slow
      test_server_shutdown_with_open_connection;
  ]

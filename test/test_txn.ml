(* Transactions & TTL subsystem tests: the MULTI/EXEC session state
   machine, compound-entry semantics and WATCH validation in the store,
   the logical expiry clock, the hierarchical timer wheel, deterministic
   expiry under sharding, AOF recovery of compound/expiry frames, and the
   zero-overhead guarantee when no transactions or TTLs are in play. *)

module C = Nr_kvstore.Command
module Store = Nr_kvstore.Store
module Session = Nr_txn.Session
module Wheel = Nr_txn.Wheel

let reply = Alcotest.testable C.pp_reply ( = )

(* Globals [Store.read_clock] / [Store.expire_skip_log] are process-wide;
   every test that arms them must restore the defaults. *)
let with_clean_globals f =
  let saved_clock = !Store.read_clock and saved_bug = !Store.expire_skip_log in
  Store.read_clock := None;
  Store.expire_skip_log := false;
  Fun.protect f ~finally:(fun () ->
      Store.read_clock := saved_clock;
      Store.expire_skip_log := saved_bug)

(* --- session state machine ----------------------------------------- *)

let no_exec cmd =
  Alcotest.failf "session executed %a outside EXEC" C.pp cmd

let zero_ms () = 0

let test_session_multi_exec () =
  let t = Session.create () in
  let step ?(exec_read = no_exec) ?(now_ms = zero_ms) cmd =
    Session.step t ~exec_read ~now_ms cmd
  in
  (match step C.Multi with
  | Session.Reply C.Ok_reply -> ()
  | _ -> Alcotest.fail "MULTI should reply OK");
  Alcotest.(check bool) "in multi" true (Session.in_multi t);
  (match step (C.Set ("a", "1")) with
  | Session.Reply (C.Bulk "QUEUED") -> ()
  | _ -> Alcotest.fail "queued write should reply QUEUED");
  (match step (C.Get "a") with
  | Session.Reply (C.Bulk "QUEUED") -> ()
  | _ -> Alcotest.fail "queued read should reply QUEUED");
  (* EXEC emits one compound entry, body in submission order *)
  (match step C.Exec with
  | Session.Execute (C.Txn ([], [ C.Set ("a", "1"); C.Get "a" ])) -> ()
  | Session.Execute c -> Alcotest.failf "wrong compound entry: %a" C.pp c
  | Session.Reply r -> Alcotest.failf "EXEC replied %a" C.pp_reply r);
  Alcotest.(check bool) "multi cleared" false (Session.in_multi t)

let test_session_guards () =
  let t = Session.create () in
  let step ?(exec_read = no_exec) cmd =
    Session.step t ~exec_read ~now_ms:zero_ms cmd
  in
  (match step C.Exec with
  | Session.Reply (C.Err "EXEC without MULTI") -> ()
  | _ -> Alcotest.fail "bare EXEC must fail");
  (match step C.Discard with
  | Session.Reply (C.Err "DISCARD without MULTI") -> ()
  | _ -> Alcotest.fail "bare DISCARD must fail");
  ignore (step C.Multi);
  (match step C.Multi with
  | Session.Reply (C.Err "MULTI calls can not be nested") -> ()
  | _ -> Alcotest.fail "nested MULTI must fail");
  (match step (C.Watch "k") with
  | Session.Reply (C.Err "WATCH inside MULTI is not allowed") -> ()
  | _ -> Alcotest.fail "WATCH inside MULTI must fail");
  (* a server-local command can not ride inside a transaction; queueing it
     poisons the block and EXEC aborts *)
  (match step C.Sync with
  | Session.Reply (C.Err _) -> ()
  | _ -> Alcotest.fail "server-local command must be refused in MULTI");
  (match step (C.Set ("a", "1")) with
  | Session.Reply (C.Bulk "QUEUED") -> ()
  | _ -> Alcotest.fail "later commands still queue");
  (match step C.Exec with
  | Session.Reply (C.Err m) ->
      Alcotest.(check bool)
        "EXECABORT" true
        (String.length m >= 9 && String.sub m 0 9 = "EXECABORT")
  | _ -> Alcotest.fail "poisoned EXEC must abort");
  Alcotest.(check bool) "aborted block cleared" false (Session.in_multi t)

let test_session_watch_and_discard () =
  let t = Session.create () in
  (* WATCH reads the stamp through the session's linearizable read hook *)
  let stamp = ref 7 in
  let exec_read = function
    | C.Getver "k" -> C.Int !stamp
    | c -> no_exec c
  in
  let step cmd = Session.step t ~exec_read ~now_ms:zero_ms cmd in
  (match step (C.Watch "k") with
  | Session.Reply C.Ok_reply -> ()
  | _ -> Alcotest.fail "WATCH should reply OK");
  (* re-WATCH replaces the stamp instead of duplicating the key *)
  stamp := 9;
  ignore (step (C.Watch "k"));
  ignore (step C.Multi);
  ignore (step (C.Set ("k", "v")));
  (match step C.Exec with
  | Session.Execute (C.Txn ([ ("k", 9) ], [ C.Set ("k", "v") ])) -> ()
  | _ -> Alcotest.fail "EXEC must carry the latest WATCH stamp");
  (* DISCARD drops both the queue and the watches *)
  ignore (step (C.Watch "k"));
  ignore (step C.Multi);
  ignore (step (C.Set ("k", "w")));
  (match step C.Discard with
  | Session.Reply C.Ok_reply -> ()
  | _ -> Alcotest.fail "DISCARD should reply OK");
  ignore (step C.Multi);
  (match step C.Exec with
  | Session.Execute (C.Txn ([], [])) -> ()
  | _ -> Alcotest.fail "watches must not survive DISCARD")

let test_session_normalizes_expiry () =
  let t = Session.create () in
  let step ?(now_ms = fun () -> 10_000) cmd =
    Session.step t ~exec_read:no_exec ~now_ms cmd
  in
  (* outside MULTI: immediate rewrite against the server clock *)
  (match step (C.Expire ("k", 5)) with
  | Session.Execute (C.Pexpireat ("k", 15_000)) -> ()
  | _ -> Alcotest.fail "EXPIRE must become absolute PEXPIREAT");
  (match step (C.Pexpire ("k", 250)) with
  | Session.Execute (C.Pexpireat ("k", 10_250)) -> ()
  | _ -> Alcotest.fail "PEXPIRE must become absolute PEXPIREAT");
  (* inside MULTI: queued relative, anchored at EXEC time, not queue time *)
  ignore (step C.Multi);
  ignore (step (C.Expire ("k", 2)));
  (match step ~now_ms:(fun () -> 50_000) C.Exec with
  | Session.Execute (C.Txn ([], [ C.Pexpireat ("k", 52_000) ])) -> ()
  | _ -> Alcotest.fail "queued EXPIRE must anchor at EXEC time")

let test_session_passthrough () =
  let t = Session.create () in
  Alcotest.(check bool)
    "plain write passes through" true
    (Session.passthrough t (C.Set ("a", "1")));
  Alcotest.(check bool)
    "MULTI needs the session" false
    (Session.passthrough t C.Multi);
  Alcotest.(check bool)
    "relative expiry needs the session" false
    (Session.passthrough t (C.Expire ("k", 1)));
  ignore (Session.step t ~exec_read:no_exec ~now_ms:zero_ms C.Multi);
  Alcotest.(check bool)
    "inside MULTI nothing passes through" false
    (Session.passthrough t (C.Set ("a", "1")))

(* --- store: compound entries and WATCH validation ------------------- *)

let test_store_txn_atomic () =
  with_clean_globals @@ fun () ->
  let s = Store.create () in
  ignore (Store.execute s (C.Set ("a", "1")));
  let r =
    Store.execute s
      (C.Txn ([], [ C.Incr "a"; C.Get "a"; C.Set ("b", "9"); C.Dbsize ]))
  in
  Alcotest.check reply "committed body replies"
    (C.Array [ C.Int 2; C.Bulk "2"; C.Ok_reply; C.Int 2 ])
    r

let test_store_txn_watch_validation () =
  with_clean_globals @@ fun () ->
  let s = Store.create () in
  ignore (Store.execute s (C.Set ("a", "1")));
  let v = match Store.execute s (C.Getver "a") with
    | C.Int v -> v
    | _ -> Alcotest.fail "GETVER"
  in
  (* stale stamp: another write bumped the version since WATCH *)
  ignore (Store.execute s (C.Set ("a", "2")));
  Alcotest.check reply "stale watch aborts" C.Nil
    (Store.execute s (C.Txn ([ ("a", v) ], [ C.Set ("a", "3") ])));
  Alcotest.check reply "aborted body did not run" (C.Bulk "2")
    (Store.execute s (C.Get "a"));
  (* fresh stamp commits *)
  let v' = match Store.execute s (C.Getver "a") with
    | C.Int v -> v
    | _ -> Alcotest.fail "GETVER"
  in
  Alcotest.check reply "fresh watch commits"
    (C.Array [ C.Ok_reply ])
    (Store.execute s (C.Txn ([ ("a", v') ], [ C.Set ("a", "3") ])));
  Alcotest.check reply "committed" (C.Bulk "3") (Store.execute s (C.Get "a"))

let test_store_ttl_logical_clock () =
  with_clean_globals @@ fun () ->
  let s = Store.create () in
  ignore (Store.execute s (C.Set ("k", "v")));
  Alcotest.check reply "no deadline" (C.Int (-1)) (Store.execute s (C.Pttl "k"));
  Alcotest.check reply "arm" (C.Int 1)
    (Store.execute s (C.Pexpireat ("k", 500)));
  Alcotest.check reply "remaining ms" (C.Int 500)
    (Store.execute s (C.Pttl "k"));
  Alcotest.check reply "TTL rounds up" (C.Int 1) (Store.execute s (C.Ttl "k"));
  (* time only advances through logged Tick entries *)
  Alcotest.check reply "tick" (C.Int 499) (Store.execute s (C.Tick 499));
  Alcotest.check reply "still alive" (C.Bulk "v") (Store.execute s (C.Get "k"));
  Alcotest.check reply "tick past deadline" (C.Int 500)
    (Store.execute s (C.Tick 500));
  Alcotest.check reply "dead to reads" C.Nil (Store.execute s (C.Get "k"));
  Alcotest.check reply "dead to TTL" (C.Int (-2)) (Store.execute s (C.Ttl "k"));
  Alcotest.check reply "dead to EXISTS" (C.Int 0)
    (Store.execute s (C.Exists "k"));
  (* ticks are monotone: a lower timestamp can not rewind the clock *)
  Alcotest.check reply "tick is monotone max" (C.Int 500)
    (Store.execute s (C.Tick 100));
  (* a masked-dead key revives fresh on the next write *)
  Alcotest.check reply "set revives" C.Ok_reply
    (Store.execute s (C.Set ("k", "w")));
  Alcotest.check reply "no inherited deadline" (C.Int (-1))
    (Store.execute s (C.Pttl "k"))

let test_store_persist_and_evict () =
  with_clean_globals @@ fun () ->
  let s = Store.create () in
  ignore (Store.execute s (C.Set ("k", "v")));
  ignore (Store.execute s (C.Pexpireat ("k", 500)));
  Alcotest.check reply "persist clears" (C.Int 1)
    (Store.execute s (C.Persist "k"));
  Alcotest.check reply "persist idempotent" (C.Int 0)
    (Store.execute s (C.Persist "k"));
  ignore (Store.execute s (C.Pexpireat ("k", 500)));
  (* an eviction carrying a stale incarnation is dropped: the wheel is an
     optimistic index, the store's deadline is the truth *)
  ignore (Store.execute s (C.Pexpireat ("k", 900)));
  ignore (Store.execute s (C.Tick 600));
  Alcotest.check reply "stale evict is a no-op" (C.Int 0)
    (Store.execute s (C.Expire_evict ("k", 500)));
  Alcotest.check reply "key survives" (C.Int 1) (Store.execute s (C.Exists "k"));
  ignore (Store.execute s (C.Tick 900));
  Alcotest.check reply "current evict removes" (C.Int 1)
    (Store.execute s (C.Expire_evict ("k", 900)));
  Alcotest.(check (list (pair string int)))
    "no expirations left" [] (Store.expirations s)

let test_store_sampled_reads () =
  with_clean_globals @@ fun () ->
  (* a wall-clock sampler makes dead keys disappear from reads without any
     Tick having been logged; mutations still only trust the logical
     clock, so nothing is deleted and no version moves *)
  let now = ref 0 in
  Store.read_clock := Some (fun () -> !now);
  let s = Store.create () in
  ignore (Store.execute s (C.Set ("k", "v")));
  ignore (Store.execute s (C.Pexpireat ("k", 500)));
  let v0 = Store.execute s (C.Getver "k") in
  now := 600;
  Alcotest.check reply "sampled read masks the corpse" C.Nil
    (Store.execute s (C.Get "k"));
  Alcotest.check reply "dbsize ignores the corpse" (C.Int 0)
    (Store.execute s C.Dbsize);
  Alcotest.check reply "read did not bump the version" v0
    (Store.execute s (C.Getver "k"));
  Alcotest.(check int) "logical clock untouched" 0 (Store.logical_now s);
  (* transaction bodies are logical: without a Tick the key is still alive
     inside a compound entry, on every replica identically *)
  Alcotest.check reply "txn body reads logically"
    (C.Array [ C.Bulk "v" ])
    (Store.execute s (C.Txn ([], [ C.Get "k" ])))

(* --- timer wheel ---------------------------------------------------- *)

let test_wheel_basics () =
  let w = Wheel.create ~start_ms:0 () in
  Alcotest.(check bool) "fresh empty" true (Wheel.is_empty w);
  Wheel.add w ~key:"b" ~deadline:5;
  Wheel.add w ~key:"a" ~deadline:5;
  Wheel.add w ~key:"c" ~deadline:3;
  Wheel.add w ~key:"far" ~deadline:100_000;
  Alcotest.(check int) "size" 4 (Wheel.size w);
  Alcotest.(check (list (pair string int)))
    "due sorted by (deadline, key)"
    [ ("c", 3); ("a", 5); ("b", 5) ]
    (Wheel.advance w ~now:10);
  Alcotest.(check (list (pair string int))) "nothing due" []
    (Wheel.advance w ~now:50);
  Alcotest.(check (list (pair string int)))
    "far entry cascades down" [ ("far", 100_000) ]
    (Wheel.advance w ~now:100_000);
  Alcotest.(check bool) "drained" true (Wheel.is_empty w)

let test_wheel_past_and_overflow () =
  let w = Wheel.create ~start_ms:1000 () in
  (* already-due entries surface on the next advance *)
  Wheel.add w ~key:"late" ~deadline:900;
  (* beyond the four levels' span: parks in overflow, still delivered *)
  let huge = 1000 + (1 lsl 26) in
  Wheel.add w ~key:"huge" ~deadline:huge;
  Alcotest.(check (list (pair string int)))
    "past deadline due immediately"
    [ ("late", 900) ]
    (Wheel.advance w ~now:1001);
  Alcotest.(check (list (pair string int)))
    "overflow delivered" [ ("huge", huge) ]
    (Wheel.advance w ~now:huge);
  Alcotest.(check int) "empty" 0 (Wheel.size w)

let wheel_vs_model =
  QCheck.Test.make ~count:200 ~name:"wheel agrees with sorted model"
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 40)
           (pair (int_bound 5000) (int_bound 9)))
        (list_of_size (QCheck.Gen.int_range 1 6) (int_bound 2000)))
    (fun (adds, steps) ->
      let w = Wheel.create ~start_ms:0 () in
      List.iter
        (fun (d, k) -> Wheel.add w ~key:(Printf.sprintf "k%d" k) ~deadline:d)
        adds;
      let pending =
        ref
          (List.map (fun (d, k) -> (d, Printf.sprintf "k%d" k)) adds
          |> List.sort compare)
      in
      let now = ref 0 in
      List.for_all
        (fun step ->
          now := !now + step;
          let due = Wheel.advance w ~now:!now in
          let exp, rest = List.partition (fun (d, _) -> d <= !now) !pending in
          pending := rest;
          due = List.map (fun (d, k) -> (k, d)) exp)
        steps)

(* --- deterministic expiry under sharding ----------------------------

   Same seed + same virtual clock schedule => the same per-shard eviction
   order and the same DBSIZE trajectory, run after run.  This is the
   property that makes sharded TTL figures reproducible: nothing in the
   expiry path consults a real clock or an OS scheduler. *)

let sharded_expiry_trace ~seed =
  let module R = (val Nr_runtime.Runtime_domains.make Nr_sim.Topology.tiny) in
  let module Sh = Nr_shard.Sharded.Make (R) (Nr_shard.Kv_shard) in
  let trace = ref [] in
  Nr_runtime.Runtime_domains.parallel_run ~nthreads:1 (fun _ ->
      let shards = 4 in
      let t =
        Sh.create
          ~cfg:{ Nr_core.Config.default with shards }
          ~factory:(fun ~shard:_ ~shard_of:_ () -> Nr_kvstore.Store.create ())
          ()
      in
      let route = Nr_shard.Router.shard_of (Sh.router t) in
      let wheels =
        Array.init shards (fun _ -> Wheel.create ~start_ms:0 ())
      in
      let rng = Nr_workload.Prng.create ~seed in
      (* populate: every key gets a pseudo-random deadline in [1, 256] *)
      for i = 0 to 63 do
        let k = Nr_workload.String_keys.key i in
        let d = 1 + Nr_workload.Prng.below rng 256 in
        ignore (Sh.execute t (C.Set (k, string_of_int i)));
        ignore (Sh.execute t (C.Pexpireat (k, d)));
        Wheel.add wheels.(route k) ~key:k ~deadline:d
      done;
      (* virtual clock: fixed 32 ms steps; per step, per shard, evict due
         entries through the logged path and record what happened *)
      for step = 1 to 8 do
        let now = step * 32 in
        ignore (Sh.execute t (C.Tick now));
        Array.iteri
          (fun shard w ->
            List.iter
              (fun (k, d) ->
                let r = Sh.execute t (C.Expire_evict (k, d)) in
                trace := (now, shard, k, d, r = C.Int 1) :: !trace)
              (Wheel.advance w ~now))
          wheels;
        match Sh.execute t C.Dbsize with
        | C.Int n -> trace := (now, -1, "", n, true) :: !trace
        | _ -> Alcotest.fail "DBSIZE"
      done);
  List.rev !trace

let test_sharded_expiry_deterministic () =
  with_clean_globals @@ fun () ->
  let t1 = sharded_expiry_trace ~seed:0xE1 in
  let t2 = sharded_expiry_trace ~seed:0xE1 in
  Alcotest.(check bool) "trace non-trivial" true (List.length t1 > 40);
  Alcotest.(check bool)
    "same seed, same eviction order and DBSIZE trajectory" true (t1 = t2);
  (* every eviction with a current incarnation landed *)
  Alcotest.(check bool)
    "evictions all effective" true
    (List.for_all (fun (_, shard, _, _, ok) -> shard < 0 || ok) t1);
  (* a different seed produces a genuinely different schedule *)
  let t3 = sharded_expiry_trace ~seed:0xE2 in
  Alcotest.(check bool) "different seed, different trace" false (t1 = t3);
  (* the DBSIZE trajectory is monotone non-increasing and ends at 0 once
     every deadline (<= 256) has passed *)
  let sizes =
    List.filter_map
      (fun (_, shard, _, n, _) -> if shard < 0 then Some n else None)
      t1
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "trajectory monotone" true (monotone sizes);
  Alcotest.(check int) "all expired at the horizon" 0
    (List.nth sizes (List.length sizes - 1))

(* --- AOF: compound and expiry frames replay ------------------------- *)

let test_recovery_replays_txn_and_expiry () =
  with_clean_globals @@ fun () ->
  let module Persister = Nr_persist.Persister in
  let sim = Nr_persist.Sim_fs.create () in
  let fs = Nr_persist.Sim_fs.fs sim in
  let create () =
    match
      Persister.create fs ~policy:Nr_persist.Aof.Always ~now_ms:zero_ms ()
    with
    | Ok pr -> pr
    | Error e -> Alcotest.failf "persister create: %s" e
  in
  let logged =
    [
      C.Set ("a", "1");
      (* a compound entry with watches, body mutations and a deadline *)
      C.Txn
        ( [ ("a", 1) ],
          [ C.Incr "n"; C.Set ("b", "2"); C.Pexpireat ("b", 700) ] );
      C.Pexpireat ("a", 400);
      C.Tick 500;
      C.Expire_evict ("a", 400);
    ]
  in
  let p, _ = create () in
  Persister.observe p (List.map Option.some logged);
  Persister.close p;
  let p2, r = create () in
  Alcotest.(check int) "all frames replayed" (List.length logged)
    r.Persister.replayed;
  (* the recovered image equals a fresh store fed the same entries *)
  let oracle = Store.create () in
  List.iter (fun c -> ignore (Store.execute oracle c)) logged;
  Alcotest.(check bool)
    "fingerprint matches oracle" true
    (Persister.fingerprint p2 = Store.fingerprint oracle);
  (* and a store seeded from the dump re-arms exactly the surviving
     deadline — what kv_server feeds back into the wheel on restart *)
  let seeded = Store.create () in
  (match Store.load seeded (Persister.dump p2) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load: %s" e);
  Alcotest.(check (list (pair string int)))
    "surviving deadline re-armed"
    [ ("b", 700) ]
    (Store.expirations seeded);
  Alcotest.check reply "evicted key gone" (C.Int 0)
    (Store.execute seeded (C.Exists "a"));
  Alcotest.check reply "txn body recovered" (C.Bulk "1")
    (Store.execute seeded (C.Get "n"));
  Alcotest.(check int) "logical clock recovered" 500
    (Store.logical_now seeded);
  Persister.close p2

(* --- zero overhead without transactions or TTLs ---------------------

   With no MULTI/EXEC, no WATCH and no deadline ever set, the subsystem
   must be invisible: a sampler-armed store answers a plain workload with
   byte-identical replies, an identical dump (hence identical AOF
   snapshot bytes) and an identical fingerprint; the wheel driver's
   empty-wheel guard never submits a Tick, so the log carries exactly the
   client's own entries. *)

let plain_workload =
  [
    C.Set ("a", "1"); C.Incr "n"; C.Get "a"; C.Mset [ ("b", "2"); ("c", "3") ];
    C.Zadd ("z", 5, 7); C.Mget [ "a"; "b"; "missing" ]; C.Del "c"; C.Dbsize;
    C.Zrange ("z", 0, -1); C.Exists "a"; C.Incrby ("n", 41); C.Ttl "a";
  ]

let test_zero_overhead_without_ttl () =
  with_clean_globals @@ fun () ->
  let run () =
    let s = Store.create () in
    let replies = List.map (Store.execute s) plain_workload in
    (replies, Store.dump s, Store.fingerprint s)
  in
  let plain = run () in
  let samples = ref 0 in
  Store.read_clock :=
    Some
      (fun () ->
        incr samples;
        987_654_321);
  let armed = run () in
  Store.read_clock := None;
  Alcotest.(check bool) "identical replies, dump and fingerprint" true
    (plain = armed);
  (* the sampler is lazy: no key ever had a deadline, so the hot read path
     never paid for a clock read *)
  Alcotest.(check int) "sampler never consulted" 0 !samples;
  (* the server's expiry driver is a no-op on an empty wheel: no Tick is
     ever submitted, so the AOF carries only the client's entries *)
  let w = Wheel.create ~start_ms:0 () in
  Alcotest.(check bool) "empty wheel short-circuits the driver" true
    (Wheel.is_empty w)

let suite =
  [
    Alcotest.test_case "session MULTI/EXEC compound entry" `Quick
      test_session_multi_exec;
    Alcotest.test_case "session guards and EXECABORT" `Quick
      test_session_guards;
    Alcotest.test_case "session WATCH stamps and DISCARD" `Quick
      test_session_watch_and_discard;
    Alcotest.test_case "session normalizes relative expiry" `Quick
      test_session_normalizes_expiry;
    Alcotest.test_case "session passthrough predicate" `Quick
      test_session_passthrough;
    Alcotest.test_case "store txn atomic body" `Quick test_store_txn_atomic;
    Alcotest.test_case "store txn WATCH validation" `Quick
      test_store_txn_watch_validation;
    Alcotest.test_case "store TTL logical clock" `Quick
      test_store_ttl_logical_clock;
    Alcotest.test_case "store PERSIST and evict incarnations" `Quick
      test_store_persist_and_evict;
    Alcotest.test_case "store sampled reads mask corpses" `Quick
      test_store_sampled_reads;
    Alcotest.test_case "wheel basics" `Quick test_wheel_basics;
    Alcotest.test_case "wheel past deadlines and overflow" `Quick
      test_wheel_past_and_overflow;
    QCheck_alcotest.to_alcotest wheel_vs_model;
    Alcotest.test_case "sharded expiry deterministic" `Quick
      test_sharded_expiry_deterministic;
    Alcotest.test_case "recovery replays txn and expiry frames" `Quick
      test_recovery_replays_txn_and_expiry;
    Alcotest.test_case "zero overhead without txn/TTL" `Quick
      test_zero_overhead_without_ttl;
  ]
